package figures

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Cheap artifacts run in full; the search-backed ones are covered by the
// search package tests and the benchmark harness.
func TestCheapArtifacts(t *testing.T) {
	cases := []struct {
		name string
		run  func() (string, error)
		want []string
	}{
		{"figure2", func() (string, error) { return Figure2(), nil },
			[]string{"looped 8x", "data-parallel", "without overlap"}},
		{"figure3", func() (string, error) { return Figure3(), nil },
			[]string{"GPU 0 | 0 4 8 12", "GPU 0 | 0 1 2 3"}},
		{"figure4", func() (string, error) { return Figure4(context.Background()) }, []string{"GPipe", "Breadth-first", "bubble"}},
		{"figure5", func() (string, error) { return Figure5(context.Background()) }, []string{"52B", "6.6B", "breadth-first"}},
		{"figure6", func() (string, error) { return Figure6(context.Background()) }, []string{"B=16", "B=64", "Nloop"}},
		{"figure9", func() (string, error) { return Figure9(context.Background()) }, []string{"DP-FS", "Breadth-first"}},
		{"table4.1", func() (string, error) { return Table41(), nil },
			[]string{"Chimera", "Breadth-first (DP-FS)"}},
		{"table5.1", func() (string, error) { return Table51(), nil },
			[]string{"52B", "6.6B", "8192"}},
		{"appendixB", func() (string, error) { return AppendixB(context.Background()) }, []string{"fit:", "McCandlish"}},
		{"appendixE-large", func() (string, error) { return AppendixELarge(context.Background(), Config{}) },
			[]string{"GPT-3", "1T", "pruning:", "Breadth-first", "V-schedule"}},
		{"extension-nextgen", func() (string, error) { return ExtensionNextGen(context.Background()) }, []string{"A100", "H100", "GPT-3"}},
	}
	for _, c := range cases {
		s, err := c.run()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("%s: missing %q in output:\n%s", c.name, w, s)
			}
		}
	}
}

// Figure 5's numbers must carry the paper's central ordering: breadth-first
// ahead of depth-first on every row.
func TestFigure5Ordering(t *testing.T) {
	s, err := Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, line := range strings.Split(s, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || strings.Contains(line, "beta") {
			continue
		}
		bf, err1 := strconv.ParseFloat(fields[1], 64)
		df, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rows++
		if bf <= df {
			t.Errorf("breadth-first (%v) should beat depth-first (%v): %s", bf, df, line)
		}
	}
	if rows < 8 {
		t.Errorf("parsed only %d data rows", rows)
	}
}

func TestGeneratorsComplete(t *testing.T) {
	want := []string{"figure1", "figure2", "figure3", "figure4", "figure5",
		"figure6", "figure7a", "figure7b", "figure7c", "figure8a", "figure8b",
		"figure8c", "figure9", "table4.1", "table5.1", "tableE1", "tableE2",
		"tableE3", "appendixB", "appendixE-large", "extension-nextgen",
		"extension-schedules"}
	gens := Generators(Config{})
	if len(gens) != len(want) {
		t.Fatalf("got %d generators, want %d", len(gens), len(want))
	}
	for i, g := range gens {
		if g.Name != want[i] {
			t.Errorf("generator %d = %q, want %q", i, g.Name, want[i])
		}
		if g.Run == nil {
			t.Errorf("generator %q has nil Run", g.Name)
		}
	}
}

func TestScenarioIndexErrors(t *testing.T) {
	if _, err := Figure7(context.Background(), 9, Config{}); err == nil {
		t.Error("out-of-range scenario should fail")
	}
	if _, err := Figure8(context.Background(), -1, Config{}); err == nil {
		t.Error("negative scenario should fail")
	}
	if _, err := TableE(context.Background(), 3, Config{}); err == nil {
		t.Error("out-of-range table should fail")
	}
}

// WriteAll is exercised with a stub directory on the cheap generators via
// the real function guarded by -short (the full run regenerates the search
// artifacts too).
func TestWriteAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration")
	}
	dir := t.TempDir()
	// Run only the cheap subset through the same file-writing path.
	for _, g := range Generators(Config{}) {
		switch g.Name {
		case "figure2", "figure3", "table4.1", "table5.1":
			s, err := g.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, g.Name+".txt"), []byte(s), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("wrote %d files, want 4", len(entries))
	}
}
