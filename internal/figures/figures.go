// Package figures regenerates every table and figure of the paper's
// evaluation from the simulator, the analytic model, the grid search and
// the SGD noise-scale simulator. Each generator takes a context (the
// sweep-backed ones observe cancellation between candidate simulations)
// and returns the rendered text; WriteAll saves them under a directory.
// A Config carries the per-call scenario knobs — family selection and the
// worker budget — so concurrent callers (e.g. server requests) never share
// process-global state. The benchmark harness (bench_test.go), the
// bfpp-figures command and the service layer all drive these functions,
// and EXPERIMENTS.md records the paper-vs-measured comparison.
package figures

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bfpp/internal/analytic"
	"bfpp/internal/batchsize"
	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
	"bfpp/internal/search"
	"bfpp/internal/trace"
	"bfpp/internal/tradeoff"
)

// paperBatches52B and paperBatches6p6B are the batch-size grids of
// Figure 7 (sized so every method family has feasible configurations).
var (
	paperBatches52B    = []int{8, 16, 32, 64, 128, 256, 512}
	paperBatchesEthnet = []int{64, 96, 128, 192, 256, 384, 512}
	paperBatches6p6B   = []int{32, 64, 96, 128, 192, 256, 384, 512}
)

// Config carries the per-call knobs of the sweep-backed artifacts. The
// zero value reproduces the paper defaults. It replaces the former
// package-global family selection, so concurrent callers with different
// selections cannot race.
type Config struct {
	// Families selects the method families Figure 1/7/8 and the Table E
	// artifacts sweep; nil means search.Families(), the paper's four
	// (AppendixELarge and ExtensionSchedules default to every registered
	// family instead — the point of those artifacts).
	Families []search.Family
	// Workers bounds the sweeps' worker pools; 0 resolves to
	// parallel.DefaultWorkers(). Results are identical at any width.
	Workers int
	// CostModel selects the cost model for the sweep-backed artifacts; nil
	// means the paper model. The direct-simulate artifacts (the schedule
	// diagrams, drawn with DiagramParams' idealized preset) ignore it.
	CostModel cost.Model
}

// fams returns the effective family selection of the paper artifacts.
func (cfg Config) fams() []search.Family {
	if len(cfg.Families) > 0 {
		return cfg.Families
	}
	return search.Families()
}

// allFams returns the effective selection of the extension artifacts,
// which default to every registered family.
func (cfg Config) allFams() []search.Family {
	if len(cfg.Families) > 0 {
		return cfg.Families
	}
	return search.AllFamilies()
}

// searchOptions maps the config onto sweep options.
func (cfg Config) searchOptions() search.Options {
	opt := search.Options{Workers: cfg.Workers}
	if cfg.CostModel != nil {
		par := engine.Defaults()
		par.Model = cfg.CostModel
		opt.Params = &par
	}
	return opt
}

// Figure1 produces the predicted training time and memory summary for the
// 52B model on 4096 V100s (the paper's headline bar chart).
func Figure1(ctx context.Context, cfg Config) (string, error) {
	c := hw.PaperCluster()
	m := model.Model52B()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: 52B model on 4096 V100 GPUs (Bcrit=%.0f)\n", batchsize.PaperBcrit52B)
	fmt.Fprintf(&b, "%-26s %12s %14s %14s\n", "Method", "time (days)", "cost (GPUd)", "mem min (GiB)")
	results, err := search.SweepAll(ctx, c, m, cfg.fams(), paperBatches52B, cfg.searchOptions())
	if err != nil {
		return "", fmt.Errorf("figure1: %w", err)
	}
	for _, f := range cfg.fams() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		rs := make([]engine.Result, len(bests))
		for i, best := range bests {
			rs[i] = best.Result
		}
		pts, err := tradeoff.Curve(ctx, m, rs, batchsize.PaperBcrit52B, []int{4096}, cfg.Workers)
		if err != nil {
			return "", err
		}
		p := pts[0]
		fmt.Fprintf(&b, "%-26s %12.2f %14.0f %14.2f\n", f, p.TimeDays, p.CostGPUDays, p.MemoryMinGiB)
	}
	return b.String(), nil
}

// Figure2 renders the theoretical efficiency curves (with and without
// network overlap) for beta_net=6, N_TP=1, N_PP=8.
func Figure2() string {
	betas := []float64{1, 1.125, 1.5, 2, 3, 4, 6, 8, 12, 16}
	var b strings.Builder
	for _, overlap := range []bool{true, false} {
		label := "(a) with overlap"
		if !overlap {
			label = "(b) without overlap"
		}
		fmt.Fprintf(&b, "Figure 2%s: theoretical max GPU utilization (%%), beta_net=6, NTP=1, NPP=8\n", label)
		fmt.Fprintf(&b, "%8s %12s %12s %12s %14s\n", "beta", "looped 8x", "looped 2x", "non-looped", "data-parallel")
		for _, beta := range betas {
			s := analytic.DefaultScenario()
			s.Overlap = overlap
			s8, s2 := s, s
			s8.Loops = 8
			s2.Loops = 2
			fmt.Fprintf(&b, "%8.3f %12.1f %12.1f %12.1f %14.1f\n", beta,
				100*s8.Utilization(core.BreadthFirst, beta),
				100*s2.Utilization(core.BreadthFirst, beta),
				100*s.Utilization(core.GPipe, beta),
				100*s.Utilization(core.NoPipelineBF, beta))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure3 renders the standard and looping placements.
func Figure3() string {
	m := model.Tiny()
	std := core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}
	looped := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4}
	return "Figure 3: layer placements, 16 layers on 4 devices\n\n" +
		trace.Placement(m, std) + "\n" + trace.Placement(m, looped)
}

// DiagramParams idealizes the engine constants for schedule diagrams: the
// paper's Figures 4 and 9 are drawn "times to scale" with the
// pipeline-parallel communication omitted, so the fixed per-op and
// per-message overheads (which dwarf the tiny demo model's compute) are
// zeroed. bfpp-trace and the service's Diagram simulations use the same
// preset.
func DiagramParams() engine.Params {
	par := engine.Defaults()
	par.KernelLaunch = 0
	par.BlockingPPBase = 0
	par.BlockingPPPerRank = 0
	return par
}

// ganttCase simulates a plan on the tiny model and renders its Gantt.
func ganttCase(name string, p core.Plan, width int) (string, error) {
	par := DiagramParams()
	res, err := engine.SimulateOpts(hw.PaperCluster(), model.Tiny(), p,
		engine.Options{CaptureTimeline: true, Params: &par})
	if err != nil {
		return "", fmt.Errorf("%s: %w", name, err)
	}
	return fmt.Sprintf("%s — batch time %.4fs, bubble %.1f%%\n%s\n",
		name, res.BatchTime, 100*res.Bubble, trace.Gantt(res.Timeline, width)), nil
}

// Figure4 renders the four pipeline schedules, times to scale.
func Figure4(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 4: pipeline schedules, 16 layers, 4 devices, 8 micro-batches\n\n")
	cases := []struct {
		name string
		plan core.Plan
	}{
		{"(a) GPipe", core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}},
		{"(b) 1F1B", core.Plan{Method: core.OneFOneB, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1}},
		{"(c) Depth-first", core.Plan{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 4}},
		{"(d) Breadth-first", core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}},
	}
	for _, c := range cases {
		s, err := ganttCase(c.name, c.plan, 120)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	b.WriteString(trace.Legend())
	return b.String(), nil
}

// Figure5 sweeps the fixed configurations: GPU utilization versus batch
// size per GPU for both models with all four schedules.
func Figure5(ctx context.Context) (string, error) {
	var b strings.Builder
	type cfg struct {
		name       string
		m          model.Transformer
		dp, pp, tp int
		nmbs       []int
	}
	cases := []cfg{
		{"(a) 52B (NPP=NTP=8, NDP=1, Smb=1, Nloop=4)", model.Model52B(), 1, 8, 8,
			[]int{8, 16, 32, 64, 128}},
		{"(b) 6.6B (NPP=4, NTP=2, NDP=8, Smb=1, Nloop=4)", model.Model6p6B(), 8, 4, 2,
			[]int{4, 8, 16, 32, 64}},
	}
	c := hw.PaperCluster()
	for _, cse := range cases {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Figure 5%s: GPU utilization (%%)\n", cse.name)
		fmt.Fprintf(&b, "%8s %14s %12s %8s %8s\n", "beta", "breadth-first", "depth-first", "gpipe", "1f1b")
		for _, nmb := range cse.nmbs {
			beta := float64(nmb*cse.dp) / 64
			row := []float64{}
			for _, mc := range []struct {
				method core.Method
				loops  int
			}{
				{core.BreadthFirst, 4}, {core.DepthFirst, 4}, {core.GPipe, 1}, {core.OneFOneB, 1},
			} {
				p := core.Plan{Method: mc.method, DP: cse.dp, PP: cse.pp, TP: cse.tp,
					MicroBatch: 1, NumMicro: nmb, Loops: mc.loops}
				// The paper's baselines run without overlap where the
				// implementation blocks (1F1B, depth-first); the overlap
				// capability is the method's registered trait.
				if schedule.TraitsOf(mc.method).Overlap {
					p.OverlapDP, p.OverlapPP = true, true
				}
				r, err := engine.Simulate(c, cse.m, p)
				if err != nil {
					return "", fmt.Errorf("figure5 %v: %w", p, err)
				}
				row = append(row, 100*r.Utilization)
			}
			fmt.Fprintf(&b, "%8.3f %14.1f %12.1f %8.1f %8.1f\n", beta, row[0], row[1], row[2], row[3])
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figure6 sweeps N_loop for the 52B model at B=16 and B=64.
func Figure6(ctx context.Context) (string, error) {
	var b strings.Builder
	c := hw.PaperCluster()
	m := model.Model52B()
	for _, nmb := range []int{16, 64} {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Figure 6 (B=%d): GPU utilization (%%) vs stages per device\n", nmb)
		fmt.Fprintf(&b, "%8s %14s %12s\n", "Nloop", "breadth-first", "depth-first")
		for _, loops := range []int{1, 2, 4, 8} {
			bfm, dfm := core.BreadthFirst, core.DepthFirst
			if loops == 1 {
				bfm, dfm = core.GPipe, core.OneFOneB
			}
			bp := core.Plan{Method: bfm, DP: 1, PP: 8, TP: 8, MicroBatch: 1,
				NumMicro: nmb, Loops: loops, OverlapDP: true, OverlapPP: true}
			dp := core.Plan{Method: dfm, DP: 1, PP: 8, TP: 8, MicroBatch: 1,
				NumMicro: nmb, Loops: loops}
			br, err := engine.Simulate(c, m, bp)
			if err != nil {
				return "", err
			}
			dr, err := engine.Simulate(c, m, dp)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%8d %14.1f %12.1f\n", loops, 100*br.Utilization, 100*dr.Utilization)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// scenario names a Figure 7 / Figure 8 / Table E experimental setting.
type scenario struct {
	name    string
	cluster hw.Cluster
	model   model.Transformer
	batches []int
	bcrit   float64
}

func scenarios() []scenario {
	return []scenario{
		{"52B-InfiniBand", hw.PaperCluster(), model.Model52B(), paperBatches52B, batchsize.PaperBcrit52B},
		{"6.6B-InfiniBand", hw.PaperCluster(), model.Model6p6B(), paperBatches6p6B, batchsize.PaperBcrit6p6B},
		{"6.6B-Ethernet", hw.PaperClusterEthernet(), model.Model6p6B(), paperBatchesEthnet, batchsize.PaperBcrit6p6B},
	}
}

// sweepAll runs the grid search for all selected families of a scenario
// over one shared work queue (search.SweepAll): every family's batch x
// plan candidates feed the same bounded worker pool, so a short family's
// tail no longer leaves workers idle while the next family enumerates.
// Families infeasible at every batch are omitted, exactly as the old
// sequential per-family sweep did.
func sweepAll(ctx context.Context, sc scenario, cfg Config) (map[search.Family][]search.Best, error) {
	out, err := search.SweepAll(ctx, sc.cluster, sc.model, cfg.fams(), sc.batches, cfg.searchOptions())
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("figures: no feasible family for %s", sc.name)
	}
	return out, nil
}

// Figure7 produces the best-utilization-vs-batch curves for one scenario
// index (0: 52B, 1: 6.6B, 2: 6.6B Ethernet).
func Figure7(ctx context.Context, idx int, cfg Config) (string, error) {
	scs := scenarios()
	if idx < 0 || idx >= len(scs) {
		return "", fmt.Errorf("figures: scenario %d out of range", idx)
	}
	sc := scs[idx]
	results, err := sweepAll(ctx, sc, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (%s): best GPU utilization (%%) per batch size\n", sc.name)
	fmt.Fprintf(&b, "%8s", "batch")
	for _, f := range cfg.fams() {
		fmt.Fprintf(&b, " %26s", f)
	}
	b.WriteString("\n")
	for _, batch := range sc.batches {
		fmt.Fprintf(&b, "%8d", batch)
		for _, f := range cfg.fams() {
			val := "-"
			for _, best := range results[f] {
				if best.Plan.BatchSize() == batch {
					val = fmt.Sprintf("%.1f", 100*best.Utilization)
				}
			}
			fmt.Fprintf(&b, " %26s", val)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figure8 produces the cost/time trade-off curves for one scenario index.
func Figure8(ctx context.Context, idx int, cfg Config) (string, error) {
	scs := scenarios()
	if idx < 0 || idx >= len(scs) {
		return "", fmt.Errorf("figures: scenario %d out of range", idx)
	}
	sc := scs[idx]
	results, err := sweepAll(ctx, sc, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (%s): projected training cost vs time (Bcrit=%.0f)\n\n", sc.name, sc.bcrit)
	for _, f := range cfg.fams() {
		bests, ok := results[f]
		if !ok {
			continue
		}
		rs := make([]engine.Result, len(bests))
		for i, best := range bests {
			rs[i] = best.Result
		}
		pts, err := tradeoff.Curve(ctx, sc.model, rs, sc.bcrit, tradeoff.PaperClusterSizes(), cfg.Workers)
		if err != nil {
			return "", err
		}
		b.WriteString(tradeoff.Format(f.String(), pts))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Figure9 renders the gradient-accumulation schedules.
func Figure9(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 9: gradient accumulation, 4 stages, 4 micro-batches, DP=4\n\n")
	cases := []struct {
		name string
		plan core.Plan
	}{
		{"(a) Depth-first (DP0)", core.Plan{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DP0, OverlapDP: true}},
		{"(b) Depth-first (DP-FS)", core.Plan{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DPFS, OverlapDP: true}},
		{"(c) Breadth-first (DP0)", core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DP0, OverlapDP: true}},
		{"(d) Breadth-first (DP-FS)", core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DPFS, OverlapDP: true}},
	}
	for _, c := range cases {
		s, err := ganttCase(c.name, c.plan, 120)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	b.WriteString(trace.Legend())
	return b.String(), nil
}

// Table41 renders the qualitative method comparison.
func Table41() string {
	return "Table 4.1 (evaluated at layers=16, PP=4, Nmb=8, Smb=1, Nloop=4, NCh=2)\n" +
		analytic.FormatTable41(analytic.Table41(analytic.DefaultTableParams()))
}

// Table51 renders the model-details table.
func Table51() string {
	var b strings.Builder
	b.WriteString("Table 5.1: models\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %10s %8s %8s %10s\n",
		"Model", "Layers", "Heads", "Head size", "Hidden", "Seq", "Params")
	for _, m := range []model.Transformer{model.Model52B(), model.Model6p6B()} {
		fmt.Fprintf(&b, "%-6s %8d %8d %10d %8d %8d %9.1fB\n",
			m.Name, m.Layers, m.Heads, m.HeadSize, m.Hidden, m.SeqLen,
			float64(m.Params())/1e9)
	}
	return b.String()
}

// TableE produces the optimal-configuration table for one scenario index
// (0: Table E.1, 1: Table E.2, 2: Table E.3).
func TableE(ctx context.Context, idx int, cfg Config) (string, error) {
	scs := scenarios()
	if idx < 0 || idx >= len(scs) {
		return "", fmt.Errorf("figures: scenario %d out of range", idx)
	}
	sc := scs[idx]
	results, err := sweepAll(ctx, sc, cfg)
	if err != nil {
		return "", err
	}
	return search.Table(fmt.Sprintf("Table E.%d (%s)", idx+1, sc.name), results), nil
}

// AppendixB runs the SGD noise-scale experiment: the steps-to-target curve
// across batch sizes, the fitted critical batch size and the
// gradient-statistics estimate.
func AppendixB(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	sim := batchsize.SGDSim{Dim: 64, Sigma: 6, Seed: 7}
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	curve := sim.StepsCurve(batches, 1.0, 0.05, 1_000_000)
	bcrit, smin, err := batchsize.FitCriticalBatch(curve)
	if err != nil {
		return "", err
	}
	est, err := batchsize.EstimateNoiseScale(sim.Sampler(0.5), 4, 64, 400)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix B: SGD noise-scale experiment (analytic B_noise = %.0f)\n", sim.NoiseScale())
	fmt.Fprintf(&b, "%8s %10s %12s\n", "batch", "steps", "samples")
	for _, batch := range batches {
		fmt.Fprintf(&b, "%8d %10d %12d\n", batch, curve[batch], batch*curve[batch])
	}
	fmt.Fprintf(&b, "\nfit: Steps = %.0f * (1 + %.1f/B)   (law of Eq. 37)\n", smin, bcrit)
	fmt.Fprintf(&b, "gradient-statistics estimate of B_noise: %.1f (McCandlish estimator)\n", est)
	return b.String(), nil
}

// Generator names one regenerable artifact. Run observes ctx: the
// sweep-backed artifacts abort between candidate simulations, the cheap
// ones between cases.
type Generator struct {
	Name string
	Run  func(ctx context.Context) (string, error)
}

// Generators lists every artifact in paper order, with the sweep-backed
// ones bound to the given config (family selection, worker budget).
func Generators(cfg Config) []Generator {
	wrap := func(f func() string) func(context.Context) (string, error) {
		return func(ctx context.Context) (string, error) {
			if err := ctx.Err(); err != nil {
				return "", err
			}
			return f(), nil
		}
	}
	sweep := func(f func(context.Context, Config) (string, error)) func(context.Context) (string, error) {
		return func(ctx context.Context) (string, error) { return f(ctx, cfg) }
	}
	indexed := func(f func(context.Context, int, Config) (string, error), idx int) func(context.Context) (string, error) {
		return func(ctx context.Context) (string, error) { return f(ctx, idx, cfg) }
	}
	return []Generator{
		{"figure1", sweep(Figure1)},
		{"figure2", wrap(Figure2)},
		{"figure3", wrap(Figure3)},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure6", Figure6},
		{"figure7a", indexed(Figure7, 0)},
		{"figure7b", indexed(Figure7, 1)},
		{"figure7c", indexed(Figure7, 2)},
		{"figure8a", indexed(Figure8, 0)},
		{"figure8b", indexed(Figure8, 1)},
		{"figure8c", indexed(Figure8, 2)},
		{"figure9", Figure9},
		{"table4.1", wrap(Table41)},
		{"table5.1", wrap(Table51)},
		{"tableE1", indexed(TableE, 0)},
		{"tableE2", indexed(TableE, 1)},
		{"tableE3", indexed(TableE, 2)},
		{"appendixB", AppendixB},
		{"appendixE-large", sweep(AppendixELarge)},
		{"extension-nextgen", ExtensionNextGen},
		{"extension-schedules", sweep(ExtensionSchedules)},
	}
}

// WriteAll regenerates every artifact into dir (one .txt per artifact),
// stopping at the first failure — including ctx cancellation, which aborts
// mid-sweep without writing the interrupted artifact.
func WriteAll(ctx context.Context, dir string, cfg Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, g := range Generators(cfg) {
		s, err := g.Run(ctx)
		if err != nil {
			return fmt.Errorf("figures: %s: %w", g.Name, err)
		}
		path := filepath.Join(dir, g.Name+".txt")
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			return err
		}
	}
	return nil
}
