package figures

import (
	"context"
	"fmt"
	"strings"

	"bfpp/internal/batchsize"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/tradeoff"
)

// ExtensionNextGen evaluates the paper's conclusion ("we would like to
// evaluate our method on bigger models and with more modern hardware such
// as NVIDIA A100 or the upcoming H100"): the breadth-first schedule on the
// 52B model and GPT-3 across V100, A100 and H100 clusters of 64 GPUs, at a
// fixed batch size per GPU.
func ExtensionNextGen(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension: breadth-first on next-generation hardware (conclusion's future work)\n")
	fmt.Fprintf(&b, "%-8s %-10s %10s %10s %10s %14s\n",
		"model", "GPU", "Tflop/s", "util%", "batch s", "time@4096 (d)")

	clusters := []struct {
		name string
		gpu  hw.GPU
		nv   hw.Link
		ib   hw.Link
	}{
		{"V100", hw.V100(), hw.NVLinkV100(), hw.InfiniBandV100()},
		{"A100", hw.A100(), hw.NVLinkA100(), hw.InfiniBandA100()},
		{"H100", hw.H100(), hw.NVLinkA100(), hw.InfiniBandA100()},
	}
	models := []struct {
		m    model.Transformer
		plan core.Plan
	}{
		{model.Model52B(), core.Plan{Method: core.BreadthFirst, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 9, Loops: 8, OverlapDP: true, OverlapPP: true}},
		{model.GPT3(), core.Plan{Method: core.BreadthFirst, DP: 1, PP: 16, TP: 4,
			MicroBatch: 1, NumMicro: 16, Loops: 6, OverlapDP: true, OverlapPP: true}},
	}
	for _, mm := range models {
		for _, cc := range clusters {
			cluster := hw.Cluster{Name: cc.name + "x64", GPU: cc.gpu, GPUsPerNode: 8,
				Nodes: 8, IntraNode: cc.nv, InterNode: cc.ib}
			r, err := engine.Simulate(cluster, mm.m, mm.plan)
			if err != nil {
				return "", fmt.Errorf("nextgen %s/%s: %w", mm.m.Name, cc.name, err)
			}
			pt := tradeoff.Extrapolate(mm.m, r, batchsize.PaperBcrit52B, 4096)
			fmt.Fprintf(&b, "%-8s %-10s %10.1f %10.1f %10.3f %14.1f\n",
				mm.m.Name, cc.name, r.Throughput/1e12, 100*r.Utilization,
				r.BatchTime, pt.TimeDays)
		}
	}
	b.WriteString("\nhigher peak flops shift the bottleneck toward the network: utilization\n")
	b.WriteString("drops across generations at fixed interconnect, but absolute throughput\n")
	b.WriteString("and end-to-end training time still improve substantially.\n")
	return b.String(), nil
}
