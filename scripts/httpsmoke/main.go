// Command httpsmoke is ci.sh's HTTP smoke client: it POSTs a
// SearchRequest to a running bfpp-serve and prints the response's table
// field verbatim, so the caller can byte-compare it against bfpp-search
// output without needing curl or a JSON processor.
//
// Usage: go run ./scripts/httpsmoke <base-url> <request-json>
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: httpsmoke <base-url> <request-json>")
		os.Exit(2)
	}
	resp, err := http.Post(os.Args[1]+"/v1/search", "application/json", strings.NewReader(os.Args[2]))
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpsmoke:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var body struct {
		Table string `json:"table"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		fmt.Fprintln(os.Stderr, "httpsmoke: decoding response:", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "httpsmoke: status %d: %s\n", resp.StatusCode, body.Error)
		os.Exit(1)
	}
	fmt.Print(body.Table)
}
