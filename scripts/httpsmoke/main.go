// Command httpsmoke is ci.sh's HTTP smoke client: it POSTs a
// SearchRequest to a running bfpp-serve and prints the response's table
// field verbatim, so the caller can byte-compare it against bfpp-search
// output without needing curl or a JSON processor.
//
// The client retries like a production caller: connection failures, 429
// (load shed) and 503 (transient fault) back off exponentially with
// deterministic jitter — honoring the server's Retry-After header as a
// floor — and try again. ci.sh's chaos pass leans on this: it arms
// bfpp-serve with a transient fault script and asserts the retried
// response still byte-matches bfpp-search.
//
// Usage: go run ./scripts/httpsmoke <base-url> <request-json>
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"bfpp/internal/service"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: httpsmoke <base-url> <request-json>")
		os.Exit(2)
	}
	attempts := 0
	table, err := service.Do(context.Background(), service.DefaultRetry(1), func() (string, error) {
		attempts++
		return post(os.Args[1]+"/v1/search", os.Args[2])
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpsmoke:", err)
		os.Exit(1)
	}
	if attempts > 1 {
		fmt.Fprintf(os.Stderr, "httpsmoke: succeeded after %d attempts\n", attempts)
	}
	fmt.Print(table)
}

// post submits the request once, mapping retryable HTTP outcomes
// (connection failures, 429 with its Retry-After hint, 503) onto the
// service retry vocabulary so Do backs off and tries again.
func post(url, body string) (string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("%w: %v", service.ErrTransient, err)
	}
	defer resp.Body.Close()
	var out struct {
		Table string `json:"table"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("decoding response: %v", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return out.Table, nil
	case http.StatusTooManyRequests:
		return "", &service.OverloadedError{RetryAfter: retryAfter(resp)}
	case http.StatusServiceUnavailable:
		return "", fmt.Errorf("%w: status 503: %s", service.ErrTransient, out.Error)
	default:
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
}

// retryAfter parses the server's backoff hint (whole seconds).
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}
