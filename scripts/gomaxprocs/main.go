// Command gomaxprocs prints runtime.GOMAXPROCS(0), so shell scripts can
// report the effective worker default without guessing from nproc.
package main

import (
	"fmt"
	"runtime"
)

func main() { fmt.Println(runtime.GOMAXPROCS(0)) }
