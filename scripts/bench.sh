#!/bin/sh
# scripts/bench.sh — perf harness for the parallel grid-search engine.
#
# Runs the search/DES benchmarks and emits BENCH_search.json with ns/op,
# B/op and allocs/op per benchmark plus the headline speedups:
#
#   sweep_figure7   full Figure-7 grid (all families x 52B batches),
#                   seed-faithful baseline vs worker-pool + caches + fast DES
#   sweep_pruned    the same grid, unpruned worker pool vs the analytic
#                   branch-and-bound (cheapest-bound ordering, incumbent
#                   skipping, dominance pre-pass); prune_rate reports the
#                   fraction of candidates never simulated, and
#                   prune_rate_by_family breaks it down per method family
#                   (how far each family's registered bound carries)
#   optimize        one (family, batch) search, baseline vs optimized
#   parallel_scaling optimized serial (1 worker) vs GOMAXPROCS workers
#   des_run         DES inner loop, reference rescanning vs indexed fast path
#   simulate_batch  one engine simulation, baseline vs optimized
#   service_overhead what the request/response layer (canonicalization,
#                   job slot, response assembly) adds on top of the direct
#                   pruned sweep: ServiceSearchCold / SweepFigure7Pruned,
#                   so ~1.0 means the service path is effectively free
#   service_cache   cold /v1/search vs a result-cache hit on the same
#                   canonicalized request
#   store_overhead  what the durable store adds to the cold service path:
#                   ServiceSearchStore / ServiceSearchCold, where the
#                   store run persists the response and journals every
#                   (family, batch) checkpoint (NoSync: the ratio measures
#                   the durability machinery — marshalling, CRC framing,
#                   appends — not the host's fsync latency)
#   fault_overhead  what arming the chaos injector (ruleless, so no fault
#                   ever fires) costs the hot paths: FaultArmed / bare for
#                   the pruned Figure-7 sweep (injector consulted per pool
#                   item) and the single-batch simulation (consulted per
#                   job). Target <= 1.02x: chaos off the happy path is free.
#   cost_model_overhead what routing pricing through an explicitly
#                   looked-up "paper" cost model (registry indirection,
#                   interface dispatch) adds over the nil-Model default:
#                   SweepFigure7PrunedCostModel / SweepFigure7Pruned, same
#                   formulas and bytes by construction. Target <= 1.02x.
#   cascade         pricing-cascade counters from the pruned sweep: the
#                   fraction of bound-skips won by the tier-1 floor alone,
#                   the fraction of candidates that paid the O(ops) tier-2
#                   exact replay, and the warm-started incumbents per sweep.
#
# Overhead ratios (service_overhead, fault_overhead) measure a wrapper
# against the exact work it wraps, so the true ratio is >= 1.0 by
# construction; a measured value below 1.0 is scheduler/timer noise, not a
# speedup. The JSON therefore clamps those ratios at 1.0 and records the
# raw measurement alongside under the _raw suffix, so a noisy run can never
# be misread as "the wrapper made it faster".
#
# Usage: scripts/bench.sh [output.json]   (env: BENCHTIME=3x BENCHCOUNT=1)
#
# With BENCHCOUNT>1 each benchmark runs that many times and the JSON
# records the fastest run (min ns/op): overhead ratios like
# fault_overhead compare numbers within ~2x of scheduler noise on a
# single-core box, and min-of-N is the stable estimator for those.
set -eu
cd "$(dirname "$0")/.."
OUT=${1:-BENCH_search.json}
BENCHTIME=${BENCHTIME:-3x}
BENCHCOUNT=${BENCHCOUNT:-1}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' \
	-bench 'BenchmarkSearchOptimize(Baseline|Serial|Parallel)$|BenchmarkSweepFigure7(Baseline|Parallel|Pruned|PrunedFault|PrunedCostModel)$|BenchmarkDESRun(Fast|Reference)$|BenchmarkSimulateBatch(Baseline|Fault)?$|BenchmarkServiceSearch(Cold|Cached|Store)$' \
	-benchmem -benchtime="$BENCHTIME" -count="$BENCHCOUNT" . | tee "$TMP"

GOMAXPROCS_N=$(go run ./scripts/gomaxprocs 2>/dev/null || nproc 2>/dev/null || echo 1)

awk -v out="$OUT" -v maxprocs="$GOMAXPROCS_N" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	if (!(name in ns)) order[n++] = name
	# min-of-N across -count repeats: keep the whole fastest record
	if (!(name in ns) || $3 + 0 < ns[name] + 0) {
		ns[name] = $3
		for (i = 4; i <= NF; i++) {
			if ($(i+1) == "B/op") bytes[name] = $i
			if ($(i+1) == "allocs/op") allocs[name] = $i
			if ($(i+1) == "prune%") prune[name] = $i
			if ($(i+1) == "floored%") floored[name] = $i
			if ($(i+1) == "replay%") replayed[name] = $i
			if ($(i+1) == "warmstarts") warms[name] = $i
			if ($(i+1) ~ /^prune_.+%$/) {
				fam = $(i+1)
				sub(/^prune_/, "", fam)
				sub(/%$/, "", fam)
				if (!(fam in famprune)) famorder[nf++] = fam
				famprune[fam] = $i
			}
		}
	}
}
# clamp1 floors a wrapper-vs-wrapped overhead ratio at 1.0 (the raw value
# is recorded separately): below 1.0 is measurement noise by construction.
function clamp1(x) { return x < 1 ? 1 : x }
END {
	printf "{\n" > out
	printf "  \"generated\": \"%s\",\n", date > out
	printf "  \"gomaxprocs\": %d,\n", maxprocs > out
	printf "  \"benchtime\": \"%s\",\n", "'"$BENCHTIME"'" > out
	printf "  \"benchcount\": %d,\n", "'"$BENCHCOUNT"'" > out
	printf "  \"benchmarks\": {\n" > out
	for (i = 0; i < n; i++) {
		k = order[i]
		printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			k, ns[k], bytes[k] == "" ? 0 : bytes[k], allocs[k] == "" ? 0 : allocs[k], \
			i < n-1 ? "," : "" > out
	}
	printf "  },\n" > out
	printf "  \"speedups\": {\n" > out
	printf "    \"sweep_figure7\": %.2f,\n", ns["SweepFigure7Baseline"] / ns["SweepFigure7Parallel"] > out
	printf "    \"sweep_pruned\": %.2f,\n", ns["SweepFigure7Parallel"] / ns["SweepFigure7Pruned"] > out
	printf "    \"optimize\": %.2f,\n", ns["SearchOptimizeBaseline"] / ns["SearchOptimizeParallel"] > out
	printf "    \"parallel_scaling\": %.2f,\n", ns["SearchOptimizeSerial"] / ns["SearchOptimizeParallel"] > out
	printf "    \"des_run\": %.2f,\n", ns["DESRunReference"] / ns["DESRunFast"] > out
	printf "    \"simulate_batch\": %.2f,\n", ns["SimulateBatchBaseline"] / ns["SimulateBatch"] > out
	printf "    \"service_overhead\": %.3f,\n", clamp1(ns["ServiceSearchCold"] / ns["SweepFigure7Pruned"]) > out
	printf "    \"service_overhead_raw\": %.3f,\n", ns["ServiceSearchCold"] / ns["SweepFigure7Pruned"] > out
	printf "    \"store_overhead\": %.3f,\n", clamp1(ns["ServiceSearchStore"] / ns["ServiceSearchCold"]) > out
	printf "    \"store_overhead_raw\": %.3f,\n", ns["ServiceSearchStore"] / ns["ServiceSearchCold"] > out
	printf "    \"service_cache\": %.0f\n", ns["ServiceSearchCold"] / ns["ServiceSearchCached"] > out
	printf "  },\n" > out
	printf "  \"fault_overhead\": {\n" > out
	printf "    \"sweep_figure7_pruned\": %.3f,\n", clamp1(ns["SweepFigure7PrunedFault"] / ns["SweepFigure7Pruned"]) > out
	printf "    \"sweep_figure7_pruned_raw\": %.3f,\n", ns["SweepFigure7PrunedFault"] / ns["SweepFigure7Pruned"] > out
	printf "    \"simulate_batch\": %.3f,\n", clamp1(ns["SimulateBatchFault"] / ns["SimulateBatch"]) > out
	printf "    \"simulate_batch_raw\": %.3f\n", ns["SimulateBatchFault"] / ns["SimulateBatch"] > out
	printf "  },\n" > out
	printf "  \"cost_model_overhead\": %.3f,\n", clamp1(ns["SweepFigure7PrunedCostModel"] / ns["SweepFigure7Pruned"]) > out
	printf "  \"cost_model_overhead_raw\": %.3f,\n", ns["SweepFigure7PrunedCostModel"] / ns["SweepFigure7Pruned"] > out
	printf "  \"cascade\": {\n" > out
	printf "    \"floored_skip_rate\": %.3f,\n", floored["SweepFigure7Pruned"] / 100 > out
	printf "    \"replay_priced_rate\": %.3f,\n", replayed["SweepFigure7Pruned"] / 100 > out
	printf "    \"warm_starts_per_sweep\": %.0f\n", warms["SweepFigure7Pruned"] + 0 > out
	printf "  },\n" > out
	printf "  \"prune_rate\": %.3f,\n", prune["SweepFigure7Pruned"] / 100 > out
	printf "  \"prune_rate_by_family\": {\n" > out
	for (i = 0; i < nf; i++) {
		f = famorder[i]
		printf "    \"%s\": %.3f%s\n", f, famprune[f] / 100, i < nf-1 ? "," : "" > out
	}
	printf "  },\n" > out
	printf "  \"allocs_reduction\": {\n" > out
	printf "    \"simulate_batch\": \"%s -> %s allocs/op\",\n", allocs["SimulateBatchBaseline"], allocs["SimulateBatch"] > out
	printf "    \"optimize\": \"%s -> %s allocs/op\"\n", allocs["SearchOptimizeBaseline"], allocs["SearchOptimizeParallel"] > out
	printf "  }\n" > out
	printf "}\n" > out
}
' "$TMP"

echo "wrote $OUT"
cat "$OUT"
