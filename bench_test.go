package bfpp_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). One benchmark per
// artifact: BenchmarkFigure1 .. BenchmarkTableE3 and BenchmarkAppendixB
// each measure a full regeneration of that artifact from the simulator and
// grid search; the remaining benchmarks measure the core primitives.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The regenerated artifacts themselves are written by cmd/bfpp-figures.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bfpp"
	"bfpp/internal/alloc"
	"bfpp/internal/batchsize"
	"bfpp/internal/collective"
	"bfpp/internal/core"
	"bfpp/internal/cost"
	"bfpp/internal/des"
	"bfpp/internal/engine"
	"bfpp/internal/fault"
	"bfpp/internal/figures"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/schedule"
	"bfpp/internal/search"
	"bfpp/internal/service"
	"bfpp/internal/store"
	"bfpp/internal/tensor"
)

// benchArtifact runs one figures generator per iteration.
func benchArtifact(b *testing.B, name string) {
	b.Helper()
	for _, g := range figures.Generators(figures.Config{}) {
		if g.Name != name {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown artifact %q", name)
}

// Paper artifacts, one benchmark each.

func BenchmarkFigure1(b *testing.B)   { benchArtifact(b, "figure1") }
func BenchmarkFigure2(b *testing.B)   { benchArtifact(b, "figure2") }
func BenchmarkFigure3(b *testing.B)   { benchArtifact(b, "figure3") }
func BenchmarkFigure4(b *testing.B)   { benchArtifact(b, "figure4") }
func BenchmarkFigure5(b *testing.B)   { benchArtifact(b, "figure5") }
func BenchmarkFigure6(b *testing.B)   { benchArtifact(b, "figure6") }
func BenchmarkFigure7a(b *testing.B)  { benchArtifact(b, "figure7a") }
func BenchmarkFigure7b(b *testing.B)  { benchArtifact(b, "figure7b") }
func BenchmarkFigure7c(b *testing.B)  { benchArtifact(b, "figure7c") }
func BenchmarkFigure8a(b *testing.B)  { benchArtifact(b, "figure8a") }
func BenchmarkFigure8b(b *testing.B)  { benchArtifact(b, "figure8b") }
func BenchmarkFigure8c(b *testing.B)  { benchArtifact(b, "figure8c") }
func BenchmarkFigure9(b *testing.B)   { benchArtifact(b, "figure9") }
func BenchmarkTable41(b *testing.B)   { benchArtifact(b, "table4.1") }
func BenchmarkTable51(b *testing.B)   { benchArtifact(b, "table5.1") }
func BenchmarkTableE1(b *testing.B)   { benchArtifact(b, "tableE1") }
func BenchmarkTableE2(b *testing.B)   { benchArtifact(b, "tableE2") }
func BenchmarkTableE3(b *testing.B)   { benchArtifact(b, "tableE3") }
func BenchmarkAppendixB(b *testing.B) { benchArtifact(b, "appendixB") }

// BenchmarkAppendixELarge regenerates the extended Appendix E grid (GPT-3
// and 1T on LargeClusters, all families, V-caps and hybrid sequence
// lengths) — tractable because of the branch-and-bound pruning.
func BenchmarkAppendixELarge(b *testing.B) { benchArtifact(b, "appendixE-large") }

// BenchmarkExtensionNextGen regenerates the A100/H100 what-if from the
// paper's conclusion.
func BenchmarkExtensionNextGen(b *testing.B) { benchArtifact(b, "extension-nextgen") }

// BenchmarkExtensionHybrid measures the Section 4.2 hybrid schedule sweep:
// sequence length from N_PP (depth-first) to N_mb (breadth-first-like).
func BenchmarkExtensionHybrid(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, seq := range []int{8, 16, 32, 64} {
			p := core.Plan{Method: core.Hybrid, DP: 1, PP: 8, TP: 8,
				MicroBatch: 1, NumMicro: 64, Loops: 8, Sequence: seq,
				OverlapDP: true, OverlapPP: true}
			r, err := engine.Simulate(c, m, p)
			if err != nil {
				b.Fatal(err)
			}
			last = r.Utilization
		}
	}
	b.ReportMetric(100*last, "util%/seq=64")
}

// BenchmarkExtensionAllocator runs the Appendix D.2 caching-allocator
// workload with and without the paper's mitigations.
func BenchmarkExtensionAllocator(b *testing.B) {
	w := alloc.Workload{Capacity: 1 << 20, StateBytes: 1 << 19,
		ActivationBytes: 1 << 16, MicroBatches: 8, Steps: 100,
		PreallocateState: true, SyncEvery: 1}
	var flushes int
	for i := 0; i < b.N; i++ {
		bad := w
		bad.PreallocateState = false
		bad.SyncEvery = 0
		flushes = bad.Run().Flushes
	}
	b.ReportMetric(float64(flushes), "flushes/unmitigated")
}

// Core primitives.

// BenchmarkScheduleGeneration measures building the breadth-first program
// for the paper's largest interesting configuration.
func BenchmarkScheduleGeneration(b *testing.B) {
	p := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 64, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}
	for i := 0; i < b.N; i++ {
		s, err := schedule.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := schedule.Check(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateBatch measures one discrete-event simulation of a
// realistic 52B configuration.
func BenchmarkSimulateBatch(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 12, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Simulate(c, m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchOneBatch measures a full Appendix E search at one
// batch size.
func BenchmarkGridSearchOneBatch(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	for i := 0; i < b.N; i++ {
		if _, err := search.Optimize(context.Background(), c, m, search.FamilyBreadthFirst, 64, search.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel search engine benchmarks: the perf harness (scripts/bench.sh)
// turns these into BENCH_search.json, tracking the speedup of the
// worker-pool + memo-cache + DES-fast-path evaluator over the seed-faithful
// baseline from this PR onward.

// benchOptimize runs one 52B breadth-first search at batch 64.
func benchOptimize(b *testing.B, opt search.Options) {
	b.Helper()
	c := hw.PaperCluster()
	m := model.Model52B()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Optimize(context.Background(), c, m, search.FamilyBreadthFirst, 64, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchOptimizeBaseline is the seed-faithful evaluator: serial,
// no memo caches, reference DES loop.
func BenchmarkSearchOptimizeBaseline(b *testing.B) {
	benchOptimize(b, search.Options{Baseline: true})
}

// BenchmarkSearchOptimizeSerial is the optimized path pinned to 1 worker
// (caches, DES fast path and branch-and-bound on): it isolates the
// single-core wins.
func BenchmarkSearchOptimizeSerial(b *testing.B) {
	benchOptimize(b, search.Options{Workers: 1})
}

// BenchmarkSearchOptimizeParallel is the default configuration: GOMAXPROCS
// workers plus caches, the DES fast path and the branch-and-bound.
func BenchmarkSearchOptimizeParallel(b *testing.B) {
	benchOptimize(b, search.Options{})
}

// benchSweep runs the full Figure 7 / Table E.1 grid: every family at every
// 52B paper batch size.
func benchSweep(b *testing.B, opt search.Options) {
	b.Helper()
	benchSweepCtx(b, context.Background(), opt)
}

// benchSweepCtx is benchSweep with a caller-supplied context (the
// fault-overhead variant arms a chaos injector on it).
func benchSweepCtx(b *testing.B, ctx context.Context, opt search.Options) {
	b.Helper()
	c := hw.PaperCluster()
	m := model.Model52B()
	batches := []int{8, 16, 32, 64, 128, 256, 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range search.Families() {
			if _, err := search.Sweep(ctx, c, m, f, batches, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepFigure7Baseline measures the whole Figure-7 sweep with the
// seed-faithful evaluator (the perf-harness speedup denominator).
func BenchmarkSweepFigure7Baseline(b *testing.B) {
	benchSweep(b, search.Options{Baseline: true})
}

// BenchmarkSweepFigure7Parallel measures the same sweep on the worker pool
// with caches and the DES fast path but the branch-and-bound disabled:
// every candidate is simulated, which is the denominator of the pruning
// speedup.
func BenchmarkSweepFigure7Parallel(b *testing.B) {
	benchSweep(b, search.Options{NoPrune: true})
}

// BenchmarkSweepFigure7Pruned is the default evaluator: worker pool,
// caches, DES fast path, and the analytic branch-and-bound (cheapest-bound
// ordering, incumbent skipping, dominance pre-pass). Results are
// byte-identical to the unpruned sweep; the prune% metric reports the
// fraction of candidates that never reached the simulator.
func BenchmarkSweepFigure7Pruned(b *testing.B) {
	stats := &search.Stats{}
	benchSweep(b, search.Options{Stats: stats})
	if e := stats.Enumerated.Load(); e > 0 {
		b.ReportMetric(100*stats.PruneRate(), "prune%")
		// Cascade tier metrics (BENCH_search.json's cascade object): the
		// fraction of bound-skips the tier-1 floor won without an exact
		// replay, the fraction of candidates that paid the O(ops) tier-2
		// price, and the warm-started incumbent count.
		if s := stats.BoundSkipped.Load(); s > 0 {
			b.ReportMetric(100*float64(stats.FlooredOut.Load())/float64(s), "floored%")
		}
		b.ReportMetric(100*float64(stats.ReplayPriced.Load())/float64(e), "replay%")
		b.ReportMetric(float64(stats.WarmStartHits.Load())/float64(b.N), "warmstarts")
		// Per-family prune rates (BENCH_search.json's prune_rate_by_family):
		// how far each family's registered bound carries the pruning.
		for _, key := range stats.FamilyKeys() {
			b.ReportMetric(100*stats.Family(key).PruneRate(), "prune_"+key+"%")
		}
	}
}

// BenchmarkSweepFigure7PrunedCostModel is BenchmarkSweepFigure7Pruned with
// the pricing routed through an explicitly looked-up "paper" cost model
// instead of the nil-Model fast default. The work is identical by
// construction (same formulas, same bytes); what it measures is the cost of
// the registry indirection itself. scripts/bench.sh ratios it against the
// default sweep as BENCH_search.json's cost_model_overhead, pinned near 1.
func BenchmarkSweepFigure7PrunedCostModel(b *testing.B) {
	cm, err := cost.Lookup("paper")
	if err != nil {
		b.Fatal(err)
	}
	par := engine.Defaults()
	par.Model = cm
	benchSweep(b, search.Options{Params: &par})
}

// BenchmarkSweepAppendixELarge is the interactive-scale smoke benchmark the
// cascade targets: the extended Appendix E grid (GPT-3 on the 512-GPU
// cluster, every registered family including the V-caps and hybrid sequence
// lengths) submitted through the service with a 30-second default deadline.
// The assertion is the point: the full-grid sweep must complete — not
// degrade to a Partial response — inside an interactive budget.
func BenchmarkSweepAppendixELarge(b *testing.B) {
	req := service.SearchRequest{Model: "gpt3", Cluster: "512",
		Families: []string{"every"}, Batches: []int{64, 128, 256}}
	for i := 0; i < b.N; i++ {
		svc := service.New(service.Config{DefaultTimeout: 30 * time.Second})
		resp, err := svc.Search(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Partial {
			b.Fatal("Appendix E large sweep degraded to a partial response within the interactive deadline")
		}
	}
}

// BenchmarkSweepFigure7PrunedFault is BenchmarkSweepFigure7Pruned with an
// armed — but ruleless — chaos injector riding the context: every worker-pool
// item pays the real injector consultation at the PoolItem point, with no
// fault ever firing. scripts/bench.sh ratios it against the uninstrumented
// sweep as BENCH_search.json's fault_overhead.sweep_figure7_pruned, pinned
// at <= 1.02x: arming chaos does not tax the search hot path.
func BenchmarkSweepFigure7PrunedFault(b *testing.B) {
	benchSweepCtx(b, fault.With(context.Background(), fault.NewScript()), search.Options{})
}

// BenchmarkSimulateBatchFault is BenchmarkSimulateBatch plus an armed,
// ruleless injector consulted once per simulation — the call shape of the
// service's Job injection point. scripts/bench.sh ratios it against the
// bare simulation as BENCH_search.json's fault_overhead.simulate_batch.
func BenchmarkSimulateBatchFault(b *testing.B) {
	inj := fault.NewScript()
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 12, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := inj.At(fault.Job, i); ok {
			b.Fatal("ruleless script fired a fault")
		}
		if _, err := engine.Simulate(c, m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Service-path benchmarks: the Figure-7 sweep submitted as a
// SearchRequest, measuring what the request/response layer adds on top of
// the direct search (canonicalization, job slot, response assembly) and
// what the result cache saves. scripts/bench.sh turns the pair into
// BENCH_search.json's service_overhead and service_cache speedups.

// figure7Request is the Figure 7 / Table E.1 grid as a service request.
func figure7Request() service.SearchRequest {
	return service.SearchRequest{Model: "52B", Cluster: "paper",
		Batches: []int{8, 16, 32, 64, 128, 256, 512}}
}

// BenchmarkServiceSearchCold measures the uncached service path: a fresh
// Service per iteration, so every request runs the full pruned sweep.
func BenchmarkServiceSearchCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svc := service.New(service.Config{})
		if _, err := svc.Search(context.Background(), figure7Request()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSearchStore measures the durable cold path: a fresh
// Service with a fresh result store and sweep journal per iteration, so
// every request runs the full pruned sweep, checkpoints each (family,
// batch) winner to the journal and persists the response. NoSync keeps
// the measurement about the durability machinery itself — JSON
// marshalling, CRC framing, the per-group journal appends — not the
// host's fsync latency (a deployment policy, toggled by -store-nosync).
// scripts/bench.sh turns ServiceSearchStore / ServiceSearchCold into
// BENCH_search.json's store_overhead (clamped at 1.0, raw alongside).
func BenchmarkServiceSearchStore(b *testing.B) {
	dir := b.TempDir()
	sopts := store.Options{Repair: true, NoSync: true}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.OpenOptions(filepath.Join(dir, fmt.Sprintf("results-%d.log", i)), sopts)
		if err != nil {
			b.Fatal(err)
		}
		j, err := store.OpenJournalOptions(filepath.Join(dir, fmt.Sprintf("sweeps-%d.journal", i)), sopts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		svc := service.New(service.Config{Store: st, Journal: j})
		if _, err := svc.Search(context.Background(), figure7Request()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st.Close()
		j.Close()
		b.StartTimer()
	}
}

// BenchmarkServiceSearchCached measures a cache hit on the same request.
func BenchmarkServiceSearchCached(b *testing.B) {
	svc := service.New(service.Config{})
	if _, err := svc.Search(context.Background(), figure7Request()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Search(context.Background(), figure7Request())
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}

// benchDESSim builds a breadth-first-shaped synthetic task graph: nDev
// compute streams plus nDev transfer streams, loops×micros compute tasks
// per device with stage-boundary transfer wiring, roughly matching the
// graphs the engine submits. Run/RunReference leave the task graph
// untouched (Run only reuses the Sim's internal scratch buffers), so one
// graph serves all sequential iterations; a Sim must not be shared across
// goroutines.
func benchDESSim() *des.Sim {
	const nDev, loops, micros = 8, 8, 16
	s := des.New()
	comp := make([]des.StreamID, nDev)
	xfer := make([]des.StreamID, nDev)
	for d := 0; d < nDev; d++ {
		comp[d] = s.Stream("compute")
		xfer[d] = s.Stream("xfer")
	}
	prev := make(map[[2]int]des.TaskID) // (stage, micro) -> producing transfer
	for l := 0; l < loops; l++ {
		for d := 0; d < nDev; d++ {
			for mb := 0; mb < micros; mb++ {
				var deps []des.TaskID
				if t, ok := prev[[2]int{l*nDev + d, mb}]; ok {
					deps = append(deps, t)
				}
				ct := s.AddTagged(comp[d], 1, des.ClassFwd, l*nDev+d, mb, deps...)
				if l < loops-1 || d < nDev-1 {
					st := s.AddTagged(xfer[d], 0.5, des.ClassSend, l*nDev+d, mb, ct)
					prev[[2]int{l*nDev + d + 1, mb}] = st
				}
			}
		}
	}
	return s
}

// BenchmarkDESRunFast measures the indexed DES execution loop.
func BenchmarkDESRunFast(b *testing.B) {
	s := benchDESSim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESRunReference measures the original rescanning loop on the
// identical graph.
func BenchmarkDESRunReference(b *testing.B) {
	s := benchDESSim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunReference(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateBatchBaseline is BenchmarkSimulateBatch without the memo
// caches and DES fast path, for allocs/op comparison.
func BenchmarkSimulateBatchBaseline(b *testing.B) {
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.BreadthFirst, DP: 4, PP: 8, TP: 2,
		MicroBatch: 1, NumMicro: 12, Loops: 8, Sharding: core.DPFS,
		OverlapDP: true, OverlapPP: true}
	opt := engine.Options{DisableCache: true, ReferenceDES: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.SimulateOpts(c, m, p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce measures the channel-based ring all-reduce used by
// the training runtime (8 ranks, 64k elements).
func BenchmarkRingAllReduce(b *testing.B) {
	g := collective.NewGroup(8)
	data := make([][]float64, 8)
	for r := range data {
		data[r] = make([]float64, 65536)
		for i := range data[r] {
			data[r][i] = float64(r + i)
		}
	}
	b.SetBytes(8 * 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(func(rank int) { g.AllReduce(rank, data[rank]) })
	}
}

// BenchmarkRuntimeStep measures one real training step of the goroutine
// runtime under the breadth-first schedule with DP-FS.
func BenchmarkRuntimeStep(b *testing.B) {
	cfg := bfpp.NetConfig{Layers: 8, Dim: 32, Hidden: 64, Seed: 1}
	plan := core.Plan{Method: core.BreadthFirst, DP: 2, PP: 2, TP: 1,
		MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DPFS}
	tr, err := bfpp.NewTrainer(cfg, plan, bfpp.DefaultAdam())
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.New(plan.BatchSize(), cfg.Dim)
	tgt := tensor.New(plan.BatchSize(), cfg.Dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(in, tgt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSGDNoiseScale measures the Appendix B noise-scale estimator.
func BenchmarkSGDNoiseScale(b *testing.B) {
	sim := batchsize.SGDSim{Dim: 64, Sigma: 6, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := batchsize.EstimateNoiseScale(sim.Sampler(0.5), 4, 64, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out, measured by
// re-simulating the Figure 6 point (52B, B=64, Nloop=8) under modified
// engine parameters.

func ablationPoint(b *testing.B, mutate func(*engine.Params)) float64 {
	b.Helper()
	par := engine.Defaults()
	mutate(&par)
	c := hw.PaperCluster()
	m := model.Model52B()
	p := core.Plan{Method: core.DepthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 64, Loops: 8}
	r, err := engine.SimulateOpts(c, m, p, engine.Options{Params: &par})
	if err != nil {
		b.Fatal(err)
	}
	return r.Utilization
}

// BenchmarkAblationBlockingStall quantifies the non-overlapped transfer
// stall: with it removed, the depth-first schedule stops degrading at high
// N_loop (the effect Section 5.2 measures).
func BenchmarkAblationBlockingStall(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationPoint(b, func(p *engine.Params) {})
		without = ablationPoint(b, func(p *engine.Params) {
			p.BlockingPPBase, p.BlockingPPPerRank = 0, 0
		})
	}
	b.ReportMetric(100*with, "util%/with-stall")
	b.ReportMetric(100*without, "util%/no-stall")
}

// BenchmarkAblationKernelLaunch quantifies the fixed per-op overhead.
func BenchmarkAblationKernelLaunch(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationPoint(b, func(p *engine.Params) {})
		without = ablationPoint(b, func(p *engine.Params) { p.KernelLaunch = 0 })
	}
	b.ReportMetric(100*with, "util%/with-launch")
	b.ReportMetric(100*without, "util%/no-launch")
}
