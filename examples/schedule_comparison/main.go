// Schedule comparison: reproduce the Figure 5a experiment — GPU utilization
// as a function of the batch size per GPU for the four pipeline schedules
// on the 52B model with a fixed distributed configuration — and render the
// Figure 4-style timeline of the winner.
//
// Run with:
//
//	go run ./examples/schedule_comparison
package main

import (
	"fmt"
	"log"

	"bfpp"
	"bfpp/internal/engine"
	"bfpp/internal/trace"
)

func main() {
	cluster := bfpp.PaperCluster()
	m := bfpp.Model52B()

	fmt.Println("Figure 5a scenario: 52B, NPP = NTP = 8, NDP = 1, Smb = 1, Nloop = 4")
	fmt.Printf("%8s %14s %12s %8s %8s\n", "beta", "breadth-first", "depth-first", "gpipe", "1f1b")
	for _, nmb := range []int{8, 16, 32, 64, 128} {
		fmt.Printf("%8.3f", float64(nmb)/64)
		for _, cfg := range []struct {
			method bfpp.Method
			loops  int
			ours   bool
			width  int // column width matching the header above
		}{
			{bfpp.BreadthFirst, 4, true, 14},
			{bfpp.DepthFirst, 4, false, 12},
			{bfpp.GPipe, 1, true, 8},
			{bfpp.OneFOneB, 1, false, 8},
		} {
			plan := bfpp.Plan{Method: cfg.method, DP: 1, PP: 8, TP: 8,
				MicroBatch: 1, NumMicro: nmb, Loops: cfg.loops,
				OverlapDP: cfg.ours, OverlapPP: cfg.ours}
			res, err := bfpp.Simulate(cluster, m, plan)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %*.1f", cfg.width, 100*res.Utilization)
		}
		fmt.Println()
	}

	// Show the breadth-first timeline at the small batch, where the schedule
	// advantage is visually obvious (small bubble, overlapped transfers).
	fmt.Println("\nBreadth-first timeline at B=8 (compute rows per GPU, transfers on pp rows):")
	plan := bfpp.Plan{Method: bfpp.BreadthFirst, DP: 1, PP: 8, TP: 8,
		MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}
	res, err := engine.SimulateOpts(cluster, m, plan, engine.Options{CaptureTimeline: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Gantt(res.Timeline, 110))
	fmt.Print(trace.Legend())
}
