// Quickstart: simulate the paper's headline configuration — the 52B model
// on 64 V100s with the breadth-first schedule near the minimum batch size
// per GPU — and compare it against the three baselines at the same batch.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bfpp"
)

func main() {
	cluster := bfpp.PaperCluster() // 8 DGX-1 nodes, 64 V100-32GB, InfiniBand
	m := bfpp.Model52B()           // Table 5.1: 64 layers, hidden 8192, seq 1024

	fmt.Printf("cluster: %s (%d GPUs), model: %v\n\n", cluster.Name, cluster.NumGPUs(), m)

	// Four schedules at the same small batch size (B = 8, beta = 1/8).
	configs := []struct {
		name string
		plan bfpp.Plan
	}{
		{"Breadth-first (ours)", bfpp.Plan{Method: bfpp.BreadthFirst, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}},
		{"Depth-first (Megatron)", bfpp.Plan{Method: bfpp.DepthFirst, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 8, Loops: 4}},
		{"GPipe", bfpp.Plan{Method: bfpp.GPipe, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}},
		{"1F1B (Megatron)", bfpp.Plan{Method: bfpp.OneFOneB, DP: 1, PP: 8, TP: 8,
			MicroBatch: 1, NumMicro: 8, Loops: 1}},
	}

	fmt.Printf("%-24s %10s %8s %10s %10s\n", "schedule", "Tflop/s", "util%", "bubble%", "mem GiB")
	var base, bf float64
	for _, cfg := range configs {
		res, err := bfpp.Simulate(cluster, m, cfg.plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10.2f %8.1f %10.1f %10.1f\n", cfg.name,
			res.Throughput/1e12, 100*res.Utilization, 100*res.Bubble,
			res.Memory.Total()/(1<<30))
		if cfg.name == "Breadth-first (ours)" {
			bf = res.Throughput
		}
		if cfg.name == "GPipe" {
			base = res.Throughput
		}
	}
	fmt.Printf("\nbreadth-first speedup over non-looped at beta=1/8: %.0f%%\n",
		100*(bf/base-1))
	fmt.Println("(the paper measures +53% at the optimized configurations, Section 5.3)")
}
