// Ethernet cluster: the slow-network use case of Section 4.3. Without
// InfiniBand, the data-parallel gradient reduction is much harder to hide,
// so the breadth-first schedule's full-batch overlap window matters even
// more — and the no-pipeline (2d) approach needs an enormous batch size per
// GPU (beta_net ~ 32) to stay efficient.
//
// Run with:
//
//	go run ./examples/ethernet_cluster
package main

import (
	"context"
	"fmt"
	"log"

	"bfpp"
)

func main() {
	m := bfpp.Model6p6B()
	ib := bfpp.PaperCluster()
	eth := bfpp.PaperClusterEthernet()

	fmt.Printf("model: %v\n", m)
	fmt.Printf("beta_net (InfiniBand): %.0f   beta_net (Ethernet): %.0f   (Appendix A.3.1)\n\n",
		bfpp.BetaNet(ib.GPU, ib.InterNode, m.SeqLen),
		bfpp.BetaNet(eth.GPU, eth.InterNode, m.SeqLen))

	// Same configuration on both networks: breadth-first vs the
	// non-overlapping depth-first baseline, DP = 8.
	mk := func(method bfpp.Method, overlap bool) bfpp.Plan {
		return bfpp.Plan{Method: method, DP: 8, PP: 4, TP: 2,
			MicroBatch: 1, NumMicro: 8, Loops: 4, OverlapDP: overlap, OverlapPP: overlap}
	}
	for _, net := range []struct {
		name    string
		cluster bfpp.Cluster
	}{{"InfiniBand", ib}, {"Ethernet", eth}} {
		bf, err := bfpp.Simulate(net.cluster, m, mk(bfpp.BreadthFirst, true))
		if err != nil {
			log.Fatal(err)
		}
		df, err := bfpp.Simulate(net.cluster, m, mk(bfpp.DepthFirst, false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s breadth-first %6.2f Tflop/s  depth-first %6.2f Tflop/s  advantage %.0f%%\n",
			net.name, bf.Throughput/1e12, df.Throughput/1e12, 100*(bf.Throughput/df.Throughput-1))
	}

	// Optimized comparison at a moderate batch (Figure 7c scenario).
	fmt.Println("\noptimized configurations at B=128 on Ethernet:")
	for _, f := range bfpp.SearchFamilies() {
		best, err := bfpp.Optimize(context.Background(), eth, m, f, 128, bfpp.SearchOptions{})
		if err != nil {
			fmt.Printf("%-26s infeasible (%v)\n", f, err)
			continue
		}
		fmt.Printf("%-26s %6.2f Tflop/s  %v\n", f, best.Throughput/1e12, best.Plan)
	}
}
