// Batch-size trade-off: walk through Section 3.5 and Section 5.4. First
// measure the critical batch size empirically with the SGD noise-scale
// simulator (Appendix B), then project the 52B model's training time and
// cost across cluster sizes with the overhead law (Eq. 7/8, Figure 8).
//
// Run with:
//
//	go run ./examples/batch_size_tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"bfpp"
	"bfpp/internal/batchsize"
)

func main() {
	// Part 1: the empirical law on a controlled problem.
	sim := batchsize.SGDSim{Dim: 64, Sigma: 6, Seed: 7} // B_noise = 36
	curve := sim.StepsCurve([]int{1, 4, 16, 64, 256}, 1.0, 0.05, 1_000_000)
	fmt.Println("SGD on a controlled problem (analytic critical batch = 36):")
	fmt.Printf("%8s %8s %10s\n", "batch", "steps", "samples")
	for _, b := range []int{1, 4, 16, 64, 256} {
		fmt.Printf("%8d %8d %10d\n", b, curve[b], b*curve[b])
	}
	bcrit, _, err := batchsize.FitCriticalBatch(curve)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted critical batch size: %.1f  (steps fall, samples rise: Eq. 7)\n\n", bcrit)

	// Part 2: what that means for the 52B model. Measure one good breadth-
	// first configuration per batch size on the 64-GPU reference cluster...
	cluster := bfpp.PaperCluster()
	m := bfpp.Model52B()
	var measured []bfpp.Result
	for _, batch := range []int{8, 64, 512} {
		best, err := bfpp.Optimize(context.Background(), cluster, m, bfpp.FamilyBreadthFirst, batch, bfpp.SearchOptions{})
		if err != nil {
			log.Fatal(err)
		}
		measured = append(measured, best.Result)
	}

	// ...then extrapolate to large clusters with the batch-size overhead.
	fmt.Printf("52B with breadth-first, Bcrit = %.0f sequences (Figure 8a):\n", bfpp.Bcrit52B)
	fmt.Printf("%8s %8s %10s %12s %14s %10s\n", "GPUs", "beta", "batch", "time (days)", "cost (GPUd)", "overhead")
	pts, err := bfpp.TradeoffCurve(context.Background(), m, measured, bfpp.Bcrit52B, []int{256, 1024, 4096, 16384}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%8d %8.3f %10.0f %12.2f %14.0f %9.0f%%\n",
			p.GPUs, p.Beta, p.Batch, p.TimeDays, p.CostGPUDays, 100*(p.Overhead-1))
	}
	fmt.Println("\nmore GPUs cut the time but inflate the batch, wasting samples —")
	fmt.Println("which is why the paper optimizes for a small batch size per GPU.")
}
