// Toy training: execute the schedules for real. Every "GPU" is a
// goroutine, the interconnect is Go channels, gradients flow through ring
// collectives, and the optimizer state can be fully sharded — then verify
// the paper's premise: all schedules compute the same optimization
// trajectory, so the performance comparison is purely about time.
//
// Run with:
//
//	go run ./examples/toy_training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bfpp"
	"bfpp/internal/tensor"
)

func main() {
	cfg := bfpp.NetConfig{Layers: 8, Dim: 16, Hidden: 32, Seed: 42}

	// Four ways to run the same global batch of 32 samples.
	plans := []struct {
		name string
		plan bfpp.Plan
	}{
		{"single device (reference)", bfpp.Plan{Method: bfpp.NoPipelineDF, DP: 1, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1}},
		{"GPipe, PP=4", bfpp.Plan{Method: bfpp.GPipe, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1}},
		{"1F1B, PP=4", bfpp.Plan{Method: bfpp.OneFOneB, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1}},
		{"breadth-first, PP=2 x 4 loops, DP=2, DP-FS",
			bfpp.Plan{Method: bfpp.BreadthFirst, DP: 2, PP: 2, TP: 1,
				MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: bfpp.DPFS}},
	}

	// A fixed regression task.
	rng := rand.New(rand.NewSource(7))
	inputs := tensor.New(32, cfg.Dim)
	targets := tensor.New(32, cfg.Dim)
	inputs.RandInit(rng, 1)
	targets.RandInit(rng, 1)

	fmt.Println("training the same batch for 20 steps under each parallelization:")
	var refWeights []float64
	for _, pc := range plans {
		tr, err := bfpp.NewTrainer(cfg, pc.plan, bfpp.AdamConfig{LR: 3e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8})
		if err != nil {
			log.Fatal(err)
		}
		var first, last float64
		for step := 0; step < 20; step++ {
			loss, err := tr.Step(inputs, targets)
			if err != nil {
				log.Fatal(err)
			}
			if step == 0 {
				first = loss
			}
			last = loss
		}
		w := tr.Weights()
		drift := 0.0
		if refWeights == nil {
			refWeights = w
		} else {
			drift = tensor.MaxAbsDiffSlice(w, refWeights)
		}
		fmt.Printf("%-45s loss %0.6f -> %0.6f   weight drift vs reference: %.2e\n",
			pc.name, first, last, drift)
	}
	fmt.Println("\nall parallelizations follow the identical optimization trajectory;")
	fmt.Println("the schedules differ only in *when* work happens, which is what the")
	fmt.Println("simulator (bfpp-sim, bfpp-search) quantifies.")
}
