// Package bfpp is a Go reproduction of "Breadth-First Pipeline Parallelism"
// (Joel Lamy-Poirier, MLSys 2023, arXiv:2211.05953): the breadth-first
// pipeline schedule, the baseline schedules it is compared against (GPipe,
// 1F1B, Megatron-LM's depth-first interleaving, and sharded data
// parallelism), a discrete-event cluster simulator that reproduces the
// paper's evaluation, and a real multi-goroutine training runtime that
// executes the schedules and verifies their equivalence.
//
// The package re-exports the main entry points; the implementation lives in
// the internal packages:
//
//	internal/core      parallelism plans, sharding modes, layer placement
//	internal/schedule  the schedule generators and invariant checker
//	internal/engine    the discrete-event performance simulator
//	internal/memsim    the memory model (paper Eqs. 13-17)
//	internal/analytic  closed-form efficiency model and Table 4.1
//	internal/search    the Appendix E configuration grid search
//	internal/parallel  bounded worker pool with deterministic ordering
//	internal/tradeoff  cluster-scale cost/time extrapolation (Figures 1, 8)
//	internal/batchsize critical-batch-size law and SGD noise simulator
//	internal/runtime   goroutine-based pipeline-parallel training runtime
//	internal/trace     ASCII Gantt and Chrome trace rendering
//
// # Concurrency and cancellation
//
// The grid search (Optimize, Sweep, SweepAll) evaluates candidate
// configurations on a bounded worker pool, defaulting to GOMAXPROCS
// goroutines; SearchOptions.Workers overrides the width (1 forces the
// serial path) and the bfpp-search/bfpp-figures/bfpp-tradeoff commands
// expose it as -workers. Every search entry point is context-first:
// cancelling the context aborts between candidate simulations, drains the
// pool promptly and returns ctx.Err(); SearchOptions.Progress streams
// pruning-counter snapshots while a sweep runs. Results are deterministic
// and byte-identical at any worker count: winner selection is tie-stable
// in enumeration order. Schedule generation and memory estimates are
// memoized across simulations (plans differing only in TP, micro-batch
// size or DP width share device programs), and the discrete-event
// simulator runs an indexed fast path; scripts/bench.sh tracks the
// resulting speedups in BENCH_search.json.
//
// # Job service
//
// The request/response job API (SearchRequest, SimulateRequest,
// FigureRequest — re-exported from internal/service) is the canonical way
// to run jobs: the five CLI commands submit these structs in process and
// cmd/bfpp-serve exposes them over HTTP with NDJSON progress streaming,
// request deadlines, per-request worker budgets, a canonicalized search
// result cache and bounded job concurrency. Models and clusters resolve
// through open registries (RegisterModel, RegisterCluster), mirroring the
// schedule registry, so new scenarios need no new endpoints.
//
// # Quick start
//
//	cluster := bfpp.PaperCluster()          // 64 V100s, 8 DGX-1 nodes
//	m := bfpp.Model52B()                    // the paper's 52B model
//	plan := bfpp.Plan{
//		Method: bfpp.BreadthFirst, DP: 1, PP: 8, TP: 8,
//		MicroBatch: 1, NumMicro: 8, Loops: 4,
//		OverlapDP: true, OverlapPP: true,
//	}
//	res, err := bfpp.Simulate(cluster, m, plan)
//	// res.Throughput, res.Utilization, res.Memory ...
package bfpp

import (
	"bfpp/internal/analytic"
	"bfpp/internal/batchsize"
	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/hw"
	"bfpp/internal/model"
	"bfpp/internal/runtime"
	"bfpp/internal/search"
	"bfpp/internal/service"
	"bfpp/internal/tradeoff"
)

// Core configuration types.
type (
	// Plan is a distributed-training configuration (grid sizes, micro-batch
	// structure, looping factor, sharding and overlap traits).
	Plan = core.Plan
	// Method selects the pipeline schedule.
	Method = core.Method
	// Sharding selects the data-parallel sharding mode.
	Sharding = core.Sharding
	// Transformer describes a transformer model architecture.
	Transformer = model.Transformer
	// Cluster describes the GPU cluster hardware.
	Cluster = hw.Cluster
	// GPU describes a single accelerator.
	GPU = hw.GPU
	// Result is a simulated batch outcome.
	Result = engine.Result
)

// Schedule methods (Section 4.1, Figures 4 and 9).
const (
	GPipe        = core.GPipe
	OneFOneB     = core.OneFOneB
	DepthFirst   = core.DepthFirst
	BreadthFirst = core.BreadthFirst
	NoPipelineDF = core.NoPipelineDF
	NoPipelineBF = core.NoPipelineBF
)

// Data-parallel sharding modes (Section 3.1).
const (
	DP0  = core.DP0
	DPPS = core.DPPS
	DPFS = core.DPFS
)

// Paper models (Table 5.1 and Appendix A.1).
var (
	Model52B  = model.Model52B
	Model6p6B = model.Model6p6B
	GPT3      = model.GPT3
	Model1T   = model.Model1T
)

// Paper hardware (Section 5 and Appendix A.3).
var (
	PaperCluster         = hw.PaperCluster
	PaperClusterEthernet = hw.PaperClusterEthernet
	LargeCluster         = hw.LargeCluster
	V100                 = hw.V100
	A100                 = hw.A100
	H100                 = hw.H100
)

// Open scenario registries: models and clusters register by name at init
// time (mirroring the schedule registry), and every surface — the CLI
// flags, the service requests' "model"/"cluster" fields — resolves them
// without code changes. LookupModel/LookupCluster resolve a registered
// name (patterns included: a bare GPU count builds a LargeCluster).
var (
	RegisterModel          = model.Register
	LookupModel            = model.Lookup
	ModelNames             = model.Names
	RegisterCluster        = hw.Register
	RegisterClusterPattern = hw.RegisterPattern
	LookupCluster          = hw.Lookup
	ClusterNames           = hw.Names
)

// Simulate runs one training batch of the configuration on the
// discrete-event simulator and returns throughput, utilization, memory and
// overhead breakdowns.
var Simulate = engine.Simulate

// Search: the Appendix E grid search (Figure 7, Tables E.1-E.3).
type (
	// SearchFamily is a method family as compared in Figure 7.
	SearchFamily = search.Family
	// SearchBest is a winning configuration with its candidate count.
	SearchBest = search.Best
	// SearchOptions tunes the grid search.
	SearchOptions = search.Options
	// SearchProgress is a pruning-counter snapshot delivered to
	// SearchOptions.Progress while a sweep runs.
	SearchProgress = search.ProgressSnapshot
)

// Method families compared in Figure 7.
const (
	FamilyBreadthFirst = search.FamilyBreadthFirst
	FamilyDepthFirst   = search.FamilyDepthFirst
	FamilyNonLooped    = search.FamilyNonLooped
	FamilyNoPipeline   = search.FamilyNoPipeline
)

// Optimize finds the most efficient feasible configuration of a family at
// a global batch size; Sweep runs it across batch sizes and SweepAll
// flattens several families onto one work queue. All are context-first:
// pass context.Background() for the uncancellable behavior.
var (
	Optimize          = search.Optimize
	Sweep             = search.Sweep
	SweepAll          = search.SweepAll
	SearchFamilies    = search.Families
	SearchAllFamilies = search.AllFamilies
)

// Job service: the request/response API shared by the CLIs and
// cmd/bfpp-serve. NewService builds the job manager (worker budgets,
// result cache, bounded concurrency); ServiceHandler exposes it over HTTP.
type (
	// Service executes bfpp jobs with caching and bounded concurrency.
	Service = service.Service
	// ServiceConfig tunes a Service.
	ServiceConfig = service.Config
	// SearchRequest describes one grid-search job.
	SearchRequest = service.SearchRequest
	// SearchResponse is a grid-search outcome (table + structured winners).
	SearchResponse = service.SearchResponse
	// SimulateRequest describes one discrete-event simulation.
	SimulateRequest = service.SimulateRequest
	// SimulateResponse is a simulation outcome.
	SimulateResponse = service.SimulateResponse
	// FigureRequest asks for paper artifacts by name.
	FigureRequest = service.FigureRequest
	// FigureResponse carries the rendered artifacts.
	FigureResponse = service.FigureResponse
)

var (
	NewService     = service.New
	ServiceHandler = service.Handler
)

// Trade-off extrapolation (Section 5.4, Figures 1 and 8).
type TradeoffPoint = tradeoff.Point

var (
	Extrapolate   = tradeoff.Extrapolate
	TradeoffCurve = tradeoff.Curve
)

// Batch-size law (Section 3.5, Appendix B).
var (
	SamplesOverhead = batchsize.SamplesOverhead
	TrainingSamples = batchsize.TrainingSamples
)

// Bcrit values the paper uses for its two models (Figure 8).
const (
	Bcrit52B  = batchsize.PaperBcrit52B
	Bcrit6p6B = batchsize.PaperBcrit6p6B
)

// Theoretical model (Figure 2) and intensities (Appendix A.3).
type AnalyticScenario = analytic.Scenario

var (
	DefaultScenario = analytic.DefaultScenario
	BetaNet         = analytic.BetaNet
)

// Real execution runtime (goroutines as GPUs, channels as interconnect).
type (
	// Trainer trains a toy residual-MLP network under a parallelism plan.
	Trainer = runtime.Trainer
	// NetConfig describes the toy network.
	NetConfig = runtime.NetConfig
	// AdamConfig holds optimizer hyperparameters.
	AdamConfig = runtime.AdamConfig
)

var (
	NewTrainer  = runtime.NewTrainer
	DefaultAdam = runtime.DefaultAdam
)
