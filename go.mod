module bfpp

go 1.24
