#!/bin/sh
# ci.sh — build + vet + format check + tests + race pass over the
# concurrent search paths. Set SKIP_RACE=1 on toolchains without cgo.
set -eu
cd "$(dirname "$0")"

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt needed on:" "$UNFORMATTED"
	exit 1
fi

echo "== go test"
go test ./...

echo "== benchmarks smoke (benchtime=1x, so they cannot rot)"
go test -run '^$' -bench . -benchtime=1x . > /dev/null

if [ "${SKIP_RACE:-0}" != "1" ]; then
	echo "== go test -race (concurrent search paths + bound properties + runtime reuse)"
	go test -race -count=1 \
		-run 'Parallel|Cache|Concurrent|Sweep|FastPath|RunMatches|Curve|CheapArtifacts|LowerBound|ExactBound|Lattice|PrunedErrors|PerFamily' \
		./internal/parallel ./internal/search ./internal/schedule \
		./internal/memsim ./internal/des ./internal/engine \
		./internal/figures ./internal/tradeoff \
		./internal/analytic ./internal/runtime
fi

echo "== ci OK"
