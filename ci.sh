#!/bin/sh
# ci.sh — build + vet + format check + tests (shuffled) + race pass over
# the concurrent search/service and chaos/recovery paths + an HTTP smoke
# test of bfpp-serve, clean and with a chaos script armed (a retrying
# client must absorb the injected transient fault and still byte-match).
# Set SKIP_RACE=1 on toolchains without cgo.
set -eu
cd "$(dirname "$0")"

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

echo "== go build"
go build ./...
go build -o "$BIN/bfpp-serve" ./cmd/bfpp-serve

echo "== go vet"
go vet ./...

echo "== gofmt"
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt needed on:" "$UNFORMATTED"
	exit 1
fi

echo "== go test (-shuffle=on: no hidden inter-test ordering dependencies)"
go test -shuffle=on ./...

echo "== benchmarks smoke (benchtime=1x, so they cannot rot; includes the"
echo "   SweepAppendixELarge interactive-deadline assertion)"
go test -run '^$' -bench . -benchtime=1x . > /dev/null

echo "== HTTP smoke (bfpp-serve on an ephemeral port vs in-process table)"
"$BIN/bfpp-serve" -addr 127.0.0.1:0 > "$BIN/serve.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "bfpp-serve did not come up"; cat "$BIN/serve.out"; exit 1; }
go run ./scripts/httpsmoke "$URL" \
	'{"model":"6.6B","cluster":"paper","batches":[32,64]}' > "$BIN/table.http"
go run ./cmd/bfpp-search -model 6.6B -batches 32,64 2>/dev/null > "$BIN/table.cli"
if ! cmp -s "$BIN/table.http" "$BIN/table.cli"; then
	echo "HTTP /v1/search table differs from bfpp-search output:"
	diff "$BIN/table.http" "$BIN/table.cli" || true
	exit 1
fi
kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "HTTP table byte-identical to the CLI table"

echo "== HTTP chaos smoke (one injected transient fault; the retrying client must still byte-match)"
"$BIN/bfpp-serve" -addr 127.0.0.1:0 -chaos job:error:1 > "$BIN/serve-chaos.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve-chaos.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "chaos bfpp-serve did not come up"; cat "$BIN/serve-chaos.out"; exit 1; }
go run ./scripts/httpsmoke "$URL" \
	'{"model":"6.6B","cluster":"paper","batches":[32,64]}' > "$BIN/table.chaos"
if ! cmp -s "$BIN/table.chaos" "$BIN/table.cli"; then
	echo "chaos-survived /v1/search table differs from bfpp-search output:"
	diff "$BIN/table.chaos" "$BIN/table.cli" || true
	exit 1
fi
kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "chaos table byte-identical to the CLI table (client retried through the fault)"

if [ "${SKIP_RACE:-0}" != "1" ]; then
	echo "== go test -race (concurrent search/service paths + cancellation + bound properties + chaos/recovery)"
	go test -race -count=1 \
		-run 'Parallel|Cache|Concurrent|Sweep|FastPath|RunMatches|Curve|CheapArtifacts|LowerBound|ExactBound|Lattice|PrunedErrors|PerFamily|Ctx|Cancel|Progress|HTTP|Search|Registry|Chaos|Fault|Supervisor|Recover|Shed|Partial|Retry|Seeded|Script|Sleep|Cascade|WarmStart' \
		./internal/parallel ./internal/search ./internal/schedule \
		./internal/memsim ./internal/des ./internal/engine \
		./internal/figures ./internal/tradeoff \
		./internal/analytic ./internal/runtime ./internal/fault \
		./internal/service ./internal/model ./internal/hw
fi

echo "== ci OK"
