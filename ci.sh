#!/bin/sh
# ci.sh — build + vet + format check + tests (shuffled) + race pass over
# the concurrent search/service and chaos/recovery paths + an HTTP smoke
# test of bfpp-serve, clean and with a chaos script armed (a retrying
# client must absorb the injected transient fault and still byte-match)
# + a bfpp-calibrate smoke (deterministic fit, byte-stable fitted search).
# Set SKIP_RACE=1 on toolchains without cgo.
set -eu
cd "$(dirname "$0")"

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

echo "== go build"
go build ./...
go build -o "$BIN/bfpp-serve" ./cmd/bfpp-serve

echo "== go vet"
# The default analyzer set includes the ones this codebase leans on
# hardest: -copylocks (the service/search structs embed sync.Mutex and
# atomic counters; copying one silently forks its state) and -atomic
# (the lifetime counters are atomic.Int64 hot paths). An explicit
# narrowed pass over the libraries keeps those two from being diluted
# away if the default set is ever trimmed with flags.
go vet ./...
go vet -copylocks -atomic ./internal/...

echo "== bfpp-lint (project invariants: determinism, registry dispatch, context-first, global state)"
# The suite must end green; per-analyzer counts are printed on stderr so
# a regression names the invariant it broke. See README "Static
# invariants" and internal/lint for the rules and the pragma contract.
go run ./cmd/bfpp-lint ./...

echo "== gofmt -s"
UNFORMATTED=$(gofmt -s -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt -s needed on:" "$UNFORMATTED"
	exit 1
fi

echo "== go test (-shuffle=on: no hidden inter-test ordering dependencies)"
go test -shuffle=on ./...

echo "== benchmarks smoke (benchtime=1x, so they cannot rot; includes the"
echo "   SweepAppendixELarge interactive-deadline assertion)"
go test -run '^$' -bench . -benchtime=1x . > /dev/null

echo "== HTTP smoke (bfpp-serve on an ephemeral port vs in-process table)"
"$BIN/bfpp-serve" -addr 127.0.0.1:0 > "$BIN/serve.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "bfpp-serve did not come up"; cat "$BIN/serve.out"; exit 1; }
go run ./scripts/httpsmoke "$URL" \
	'{"model":"6.6B","cluster":"paper","batches":[32,64]}' > "$BIN/table.http"
go run ./cmd/bfpp-search -model 6.6B -batches 32,64 2>/dev/null > "$BIN/table.cli"
if ! cmp -s "$BIN/table.http" "$BIN/table.cli"; then
	echo "HTTP /v1/search table differs from bfpp-search output:"
	diff "$BIN/table.http" "$BIN/table.cli" || true
	exit 1
fi
kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "HTTP table byte-identical to the CLI table"

echo "== HTTP chaos smoke (one injected transient fault; the retrying client must still byte-match)"
"$BIN/bfpp-serve" -addr 127.0.0.1:0 -chaos job:error:1 > "$BIN/serve-chaos.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve-chaos.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "chaos bfpp-serve did not come up"; cat "$BIN/serve-chaos.out"; exit 1; }
go run ./scripts/httpsmoke "$URL" \
	'{"model":"6.6B","cluster":"paper","batches":[32,64]}' > "$BIN/table.chaos"
if ! cmp -s "$BIN/table.chaos" "$BIN/table.cli"; then
	echo "chaos-survived /v1/search table differs from bfpp-search output:"
	diff "$BIN/table.chaos" "$BIN/table.cli" || true
	exit 1
fi
kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "chaos table byte-identical to the CLI table (client retried through the fault)"

echo "== kill-and-resume smoke (SIGKILL mid-sweep; the restarted server must"
echo "   resume from its journal and still byte-match bfpp-search)"
STORE="$BIN/store"
KILL_REQ='{"model":"6.6B","cluster":"paper","families":["every"],"batches":[8,16,32,64,128,256,512,1024],"no_prune":true}'
"$BIN/bfpp-serve" -addr 127.0.0.1:0 -store "$STORE" > "$BIN/serve-kill.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve-kill.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "store-backed bfpp-serve did not come up"; cat "$BIN/serve-kill.out"; exit 1; }
# Fire a slow unpruned sweep, wait for the first checkpoints to reach the
# journal, then SIGKILL the server mid-flight: no drain, no shutdown hooks
# — only the per-record fsyncs in the sweep journal survive. The orphaned
# client is expected to fail; ignore it.
go run ./scripts/httpsmoke "$URL" "$KILL_REQ" > /dev/null 2>&1 &
SMOKE_PID=$!
for i in $(seq 1 100); do
	[ -s "$STORE/sweeps.journal" ] && break
	sleep 0.2
done
sleep 0.5 # let a few more groups resolve, but stay mid-sweep
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
if [ -s "$STORE/sweeps.journal" ]; then
	echo "journal holds $(wc -c < "$STORE/sweeps.journal") bytes of checkpoints from the killed sweep"
else
	echo "note: the sweep was killed before its first checkpoint (resume degenerates to a fresh run)"
fi
"$BIN/bfpp-serve" -addr 127.0.0.1:0 -store "$STORE" > "$BIN/serve-resume.out" 2>&1 &
SERVE_PID=$!
URL=""
for i in $(seq 1 50); do
	URL=$(sed -n 's#.*listening on ##p' "$BIN/serve-resume.out")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "restarted bfpp-serve did not come up"; cat "$BIN/serve-resume.out"; exit 1; }
go run ./scripts/httpsmoke "$URL" "$KILL_REQ" > "$BIN/table.resumed"
go run ./cmd/bfpp-search -model 6.6B -families every -noprune \
	-batches 8,16,32,64,128,256,512,1024 2>/dev/null > "$BIN/table.resume-want"
if ! cmp -s "$BIN/table.resumed" "$BIN/table.resume-want"; then
	echo "journal-resumed table differs from bfpp-search output:"
	diff "$BIN/table.resumed" "$BIN/table.resume-want" || true
	exit 1
fi
kill "$SERVE_PID" 2>/dev/null && wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "resumed table byte-identical to the CLI table (journal replayed across the SIGKILL)"

echo "== calibrate smoke (tiny measure budget; the fit and the search it feeds must be deterministic)"
CAL="$BIN/cal"
mkdir -p "$CAL"
# Measurement is inherently nondeterministic (it times real kernels); the
# pinned property is everything downstream of the samples file: the same
# samples always fit to byte-identical profiles, and a fitted profile
# drives byte-identical search tables across runs.
go run ./cmd/bfpp-calibrate -quick -reps 1 \
	-samples "$CAL/samples.json" -profile "$CAL/profile.json" > /dev/null
go run ./cmd/bfpp-calibrate -fit "$CAL/samples.json" -profile "$CAL/refit1.json" > /dev/null
go run ./cmd/bfpp-calibrate -fit "$CAL/samples.json" -profile "$CAL/refit2.json" > /dev/null
if ! cmp -s "$CAL/refit1.json" "$CAL/refit2.json" || ! cmp -s "$CAL/refit1.json" "$CAL/profile.json"; then
	echo "re-fitting the same samples produced different profiles:"
	diff "$CAL/profile.json" "$CAL/refit1.json" || true
	diff "$CAL/refit1.json" "$CAL/refit2.json" || true
	exit 1
fi
go run ./cmd/bfpp-search -model 6.6B -batches 32 \
	-costmodel "calibrated:$CAL/profile.json" 2>/dev/null > "$CAL/table1"
go run ./cmd/bfpp-search -model 6.6B -batches 32 \
	-costmodel "calibrated:$CAL/profile.json" 2>/dev/null > "$CAL/table2"
if ! cmp -s "$CAL/table1" "$CAL/table2"; then
	echo "two searches under the same fitted profile differ:"
	diff "$CAL/table1" "$CAL/table2" || true
	exit 1
fi
echo "fit deterministic (measure->fit == refit == refit) and the fitted-profile search is byte-stable"

if [ "${SKIP_RACE:-0}" != "1" ]; then
	echo "== go test -race (concurrent search/service paths + cancellation + bound properties + chaos/recovery + durability/dispatch)"
	go test -race -count=1 \
		-run 'Parallel|Cache|Concurrent|Sweep|FastPath|RunMatches|Curve|CheapArtifacts|LowerBound|ExactBound|Lattice|PrunedErrors|PerFamily|Ctx|Cancel|Progress|HTTP|Search|Registry|Chaos|Fault|Supervisor|Recover|Shed|Partial|Retry|Seeded|Script|Sleep|Cascade|WarmStart|Checkpoint|Resume|Journal|Store|Corrupt|Dispatch|Replica|Sharder|Metrics|Stream|CostModel|Fit' \
		./internal/parallel ./internal/search ./internal/schedule \
		./internal/memsim ./internal/des ./internal/engine \
		./internal/figures ./internal/tradeoff \
		./internal/analytic ./internal/runtime ./internal/fault \
		./internal/service ./internal/model ./internal/hw \
		./internal/store ./internal/dispatch ./internal/cost
fi

echo "== ci OK"
