// Command bfpp-figures regenerates every table and figure of the paper's
// evaluation into a results directory (and optionally to stdout). It is a
// thin client of the job service: each artifact is fetched through the
// same FigureRequest that cmd/bfpp-serve accepts over POST /v1/figures,
// and Ctrl-C cancels the current sweep promptly.
//
// Usage:
//
//	bfpp-figures -out results              # regenerate everything
//	bfpp-figures -only figure6 -stdout     # one artifact, printed
//
// Artifact names: figure1..figure9 (7a-7c, 8a-8c), table4.1, table5.1,
// tableE1..tableE3, appendixB, appendixE-large (the extended Appendix E
// grid: GPT-3 and 1T on V100 LargeClusters with per-grid-point V-schedule
// caps and hybrid sequence lengths, plus branch-and-bound pruning
// statistics), extension-nextgen and extension-schedules.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"bfpp/internal/figures"
	"bfpp/internal/service"
)

func main() {
	var (
		out       = flag.String("out", "results", "output directory")
		only      = flag.String("only", "", "regenerate a single artifact (comma-separated list allowed)")
		stdout    = flag.Bool("stdout", false, "also print artifacts to stdout")
		workers   = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		families  = flag.String("families", "", "family selection for the sweep artifacts (figure1/7/8, tableE*): comma-separated keys, \"all\" (paper) or \"every\" (all registered)")
		costModel = flag.String("costmodel", "", "cost model for the sweep artifacts (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	known := map[string]bool{}
	var available []string
	for _, g := range figures.Generators(figures.Config{}) {
		known[g.Name] = true
		available = append(available, g.Name)
	}
	names := available
	if *only != "" {
		names = nil
		seen := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n == "" || seen[n] {
				continue
			}
			seen[n] = true
			names = append(names, n)
		}
		// Validate every name before any (possibly minutes-long) sweep
		// runs, so a typo cannot waste the preceding artifacts' work.
		for _, n := range names {
			if !known[n] {
				fatal(fmt.Errorf("unknown artifact %q (available: %s)", n, strings.Join(available, ", ")))
			}
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	svc := service.New(service.Config{MaxJobs: 1})
	var famList []string
	if *families != "" {
		for _, f := range strings.Split(*families, ",") {
			if f = strings.TrimSpace(f); f != "" {
				famList = append(famList, f)
			}
		}
	}
	// One request per artifact keeps the per-artifact timing output and
	// writes results incrementally, like the pre-service command.
	for _, name := range names {
		//lint:allow detsource per-artifact elapsed time goes to the progress line only, never into artifact bytes
		start := time.Now()
		// Retryable failures back off and retry; artifacts are deterministic,
		// so retries cannot change the written files.
		resp, err := service.Do(ctx, service.DefaultRetry(1), func() (service.FigureResponse, error) {
			return svc.Figures(ctx, service.FigureRequest{
				Names:     []string{name},
				Families:  famList,
				Workers:   *workers,
				CostModel: *costModel,
			})
		})
		if err != nil {
			fatal(err)
		}
		a := resp.Artifacts[0]
		path := filepath.Join(*out, a.Name+".txt")
		if err := os.WriteFile(path, []byte(a.Text), 0o644); err != nil {
			fatal(err)
		}
		//lint:allow detsource per-artifact elapsed time goes to the progress line only, never into artifact bytes
		fmt.Printf("wrote %-28s (%5.1fs)\n", path, time.Since(start).Seconds())
		if *stdout {
			fmt.Println(a.Text)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfpp-figures:", err)
	os.Exit(1)
}
