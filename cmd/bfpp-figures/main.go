// Command bfpp-figures regenerates every table and figure of the paper's
// evaluation into a results directory (and optionally to stdout).
//
// Usage:
//
//	bfpp-figures -out results              # regenerate everything
//	bfpp-figures -only figure6 -stdout     # one artifact, printed
//
// Artifact names: figure1..figure9 (7a-7c, 8a-8c), table4.1, table5.1,
// tableE1..tableE3, appendixB, appendixE-large (the extended Appendix E
// grid: GPT-3 and 1T on V100 LargeClusters with per-grid-point V-schedule
// caps and hybrid sequence lengths, plus branch-and-bound pruning
// statistics), extension-nextgen and extension-schedules.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bfpp/internal/cli"
	"bfpp/internal/figures"
	"bfpp/internal/parallel"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		only     = flag.String("only", "", "regenerate a single artifact (comma-separated list allowed)")
		stdout   = flag.Bool("stdout", false, "also print artifacts to stdout")
		workers  = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		families = flag.String("families", "", "family selection for the sweep artifacts (figure1/7/8, tableE*): comma-separated keys, \"all\" (paper) or \"every\" (all registered)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	if *families != "" {
		fams, err := cli.ParseFamilies(*families)
		if err != nil {
			fatal(err)
		}
		figures.SetSweepFamilies(fams)
	}

	gens := figures.Generators()
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var filtered []figures.Generator
		for _, g := range gens {
			if want[g.Name] {
				filtered = append(filtered, g)
				delete(want, g.Name)
			}
		}
		if len(want) > 0 {
			var names []string
			for _, g := range gens {
				names = append(names, g.Name)
			}
			fmt.Fprintf(os.Stderr, "bfpp-figures: unknown artifacts %v (available: %s)\n",
				keys(want), strings.Join(names, ", "))
			os.Exit(1)
		}
		gens = filtered
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, g := range gens {
		start := time.Now()
		s, err := g.Run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", g.Name, err))
		}
		path := filepath.Join(*out, g.Name+".txt")
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %-28s (%5.1fs)\n", path, time.Since(start).Seconds())
		if *stdout {
			fmt.Println(s)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfpp-figures:", err)
	os.Exit(1)
}
