// Command bfpp-lint runs the project's static-analysis suite (package
// internal/lint) over the module: determinism of map iteration and entropy
// sources, registry-dispatch hygiene, the context-first API contract, and
// package-level mutable state. It exits non-zero when any finding remains
// unsuppressed, printing file:line diagnostics and a per-analyzer count
// summary; //lint:allow <analyzer> <reason> pragmas in the source suppress
// individual findings.
package main

import (
	"fmt"
	"os"
	"sort"

	"bfpp/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(".", lint.All(), patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfpp-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	names := make([]string, 0, len(res.Counts))
	for name := range res.Counts {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "bfpp-lint: %-12s %d finding(s)\n", name, res.Counts[name])
		total += res.Counts[name]
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "bfpp-lint: %d finding(s) total\n", total)
		os.Exit(1)
	}
}
