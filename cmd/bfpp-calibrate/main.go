// Command bfpp-calibrate measures per-op timing samples on the host and
// fits a cost-model calibration profile from them (internal/cost.Fit). The
// workflow is:
//
//	bfpp-calibrate -samples samples.json -profile profile.json   # measure + fit
//	bfpp-search -costmodel calibrated:profile.json ...           # search with it
//
// Measurement times real operations: tensor.MatMul micro-sweeps over a grid
// of (rows, width) shapes for the kernel-efficiency curve and launch
// overhead, in-process memory copies for the intra-node link class and pipe
// transfers for the inter-node class. Raw timings are inherently
// nondeterministic; the deterministic half of the pipeline is the fit —
// re-fitting a saved samples file (-fit) always reproduces the profile
// byte-for-byte, which is what the CI smoke pins:
//
//	bfpp-calibrate -fit samples.json -profile profile.json       # deterministic
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"bfpp/internal/cost"
	"bfpp/internal/tensor"
)

func main() {
	var (
		samplesOut = flag.String("samples", "", "write measured samples to this JSON file")
		profileOut = flag.String("profile", "", "write the fitted profile to this JSON file")
		fitIn      = flag.String("fit", "", "fit an existing samples JSON file instead of measuring")
		reps       = flag.Int("reps", 3, "timing repetitions per point (minimum is kept)")
		quick      = flag.Bool("quick", false, "tiny sweep budget (CI smoke)")
		seed       = flag.Int64("seed", 1, "seed for operand initialization")
	)
	flag.Parse()
	if *profileOut == "" && *samplesOut == "" {
		fatalIf(fmt.Errorf("nothing to do: pass -profile and/or -samples"))
	}

	var samples []cost.Sample
	if *fitIn != "" {
		raw, err := os.ReadFile(*fitIn)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &samples))
		fmt.Printf("loaded %d samples from %s\n", len(samples), *fitIn)
	} else {
		samples = measure(*reps, *quick, *seed)
		fmt.Printf("measured %d samples\n", len(samples))
	}

	if *samplesOut != "" {
		fatalIf(writeJSON(*samplesOut, samples))
		fmt.Printf("samples written to %s\n", *samplesOut)
	}
	if *profileOut != "" {
		prof, err := cost.Fit(samples)
		fatalIf(err)
		fatalIf(writeJSON(*profileOut, prof))
		fmt.Printf("profile written to %s\n", *profileOut)
		fmt.Printf("  kernel:   max_eff=%.4g half_rows=%.4g half_width=%.4g\n",
			prof.Kernel.MaxEff, prof.Kernel.HalfRows, prof.Kernel.HalfWidth)
		fmt.Printf("  launch:   %.3g s\n", prof.KernelLaunch)
		fmt.Printf("  tp link:  eff=%.4g lat=%.3g s\n", prof.TPLinkEfficiency, prof.IntraNodeLatency)
		fmt.Printf("  dp link:  eff=%.4g lat=%.3g s\n", prof.DPLinkEfficiency, prof.InterNodeLatency)
	}
}

// measure runs the micro-sweeps and returns the timing samples in a fixed
// sweep order (only the Seconds values vary between runs).
func measure(reps int, quick bool, seed int64) []cost.Sample {
	rowSweep := []int{32, 64, 128, 256, 512}
	widthSweep := []int{32, 64, 128, 256}
	byteSweep := []int{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}
	if quick {
		rowSweep = []int{16, 64, 256}
		widthSweep = []int{16, 64}
		byteSweep = []int{1 << 14, 1 << 17, 1 << 20}
	}

	var samples []cost.Sample
	rng := rand.New(rand.NewSource(seed))

	// Compute sweep: one MatMul of a (rows x width) activation against a
	// (width x width) weight per op, 2*rows*width*width flop. PeakFlops is
	// backfilled below as the best rate the sweep achieved, so efficiencies
	// are relative to the host's own ceiling.
	var computeIdx []int
	for _, w := range widthSweep {
		b := tensor.New(w, w)
		b.RandInit(rng, 0.1)
		for _, r := range rowSweep {
			a := tensor.New(r, w)
			a.RandInit(rng, 0.1)
			flop := 2 * float64(r) * float64(w) * float64(w)
			secs := timeOp(reps, iterationsFor(flop), func() { tensor.MatMul(a, b) })
			if secs <= 0 {
				fmt.Fprintf(os.Stderr, "bfpp-calibrate: dropping unmeasurable compute point rows=%d width=%d\n", r, w)
				continue
			}
			computeIdx = append(computeIdx, len(samples))
			samples = append(samples, cost.Sample{
				Op: "compute", Rows: float64(r), Width: float64(w),
				Flop: flop, Seconds: secs,
			})
		}
	}
	peak := 0.0
	for _, i := range computeIdx {
		if rate := samples[i].Flop / samples[i].Seconds; rate > peak {
			peak = rate
		}
	}
	for _, i := range computeIdx {
		samples[i].PeakFlops = peak
	}

	// Intra-node link stand-in: in-process memory copies.
	samples = append(samples, linkSweep("intra", byteSweep, reps, func(buf []byte) func() {
		dst := make([]byte, len(buf))
		return func() { copy(dst, buf) }
	})...)

	// Inter-node link stand-in: transfers through an OS pipe.
	samples = append(samples, linkSweep("inter", byteSweep, reps, func(buf []byte) func() {
		return func() { pipeTransfer(buf) }
	})...)

	return samples
}

// linkSweep times one transfer op per message size and backfills the raw
// Bandwidth reference as the best rate the sweep achieved for the kind.
func linkSweep(kind string, byteSweep []int, reps int, mk func(buf []byte) func()) []cost.Sample {
	var out []cost.Sample
	for _, n := range byteSweep {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i)
		}
		secs := timeOp(reps, iterationsFor(float64(n)*100), mk(buf))
		if secs <= 0 {
			fmt.Fprintf(os.Stderr, "bfpp-calibrate: dropping unmeasurable %s point bytes=%d\n", kind, n)
			continue
		}
		out = append(out, cost.Sample{Op: kind, Bytes: float64(n), Seconds: secs})
	}
	best := 0.0
	for _, s := range out {
		if rate := s.Bytes / s.Seconds; rate > best {
			best = rate
		}
	}
	for i := range out {
		out[i].Bandwidth = best
	}
	return out
}

// pipeTransfer pushes buf through an OS pipe and drains it, approximating a
// kernel-mediated transfer with real syscall latency.
func pipeTransfer(buf []byte) {
	r, w, err := os.Pipe()
	fatalIf(err)
	go func() {
		w.Write(buf)
		w.Close()
	}()
	io.Copy(io.Discard, r)
	r.Close()
}

// iterationsFor picks how many times to run an op inside one timed loop so
// the loop is long enough for the clock to resolve: more iterations for
// cheaper ops. The scale is "work units" — flop for compute, ~bytes for
// transfers.
func iterationsFor(work float64) int {
	it := int(2e8 / work)
	if it < 1 {
		return 1
	}
	if it > 4096 {
		return 4096
	}
	return it
}

// timeOp returns the minimum per-op wall time over reps timed loops of
// iters calls each. Minimum-of-N is the standard noise filter for
// microbenchmarks: interference only ever adds time.
func timeOp(reps, iters int, fn func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		//lint:allow detsource calibration measures real op wall time; timings feed samples, never pinned table bytes
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		//lint:allow detsource calibration measures real op wall time; timings feed samples, never pinned table bytes
		elapsed := time.Since(start).Seconds() / float64(iters)
		if elapsed < best {
			best = elapsed
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// writeJSON writes v as indented JSON with a trailing newline — a canonical
// encoding, so identical values always produce identical bytes.
func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-calibrate:", err)
		os.Exit(1)
	}
}
