// Command bfpp-tradeoff reproduces the training time/cost trade-off of
// Section 5.4: it grid-searches the best configurations per method and
// batch size on the reference 64-GPU cluster, extrapolates them to a range
// of cluster sizes with the batch-size overhead law (Eq. 7), and prints the
// cost-versus-time curves of Figure 8 plus the Figure 1 summary at 4096
// GPUs.
//
// The sweep runs through the job service as one SearchRequest per family
// (the same struct cmd/bfpp-serve accepts), then the extrapolation
// projects the structured winners locally; Ctrl-C cancels promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bfpp/internal/batchsize"
	"bfpp/internal/cli"
	"bfpp/internal/engine"
	"bfpp/internal/service"
	"bfpp/internal/tradeoff"
)

func main() {
	var (
		modelName   = flag.String("model", "52B", "model: 52B or 6.6B")
		clusterName = flag.String("cluster", "paper", "reference cluster: paper or ethernet")
		batchesStr  = flag.String("batches", "8,16,32,64,128,256,512", "measured batch sizes")
		gpusStr     = flag.String("gpus", "256,512,1024,2048,4096,8192,16384", "cluster sizes to extrapolate to")
		figure1At   = flag.Int("figure1", 4096, "cluster size for the Figure 1 summary (0 to skip)")
		workers     = flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		costModel   = flag.String("costmodel", "", "cost model for the sweep (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := cli.ParseModel(*modelName)
	fatalIf(err)
	c, err := cli.ParseCluster(*clusterName)
	fatalIf(err)
	batches, err := cli.ParseInts(*batchesStr)
	fatalIf(err)
	gpus, err := cli.ParseInts(*gpusStr)
	fatalIf(err)

	bcrit := batchsize.PaperBcrit52B
	if m.Name == "6.6B" {
		bcrit = batchsize.PaperBcrit6p6B
	}
	fmt.Printf("%s on %s, Bcrit = %.0f sequences, base length %.0f critical batches\n\n",
		m.Name, c.Name, bcrit, batchsize.PaperBaseBatches)

	svc := service.New(service.Config{MaxJobs: 1})
	// Retryable failures back off and retry; the sweep is deterministic, so
	// retries cannot change the curves.
	resp, err := service.Do(ctx, service.DefaultRetry(1), func() (service.SearchResponse, error) {
		return svc.Search(ctx, service.SearchRequest{
			Model:     *modelName,
			Cluster:   *clusterName,
			Batches:   batches,
			Workers:   *workers,
			CostModel: *costModel,
		})
	})
	fatalIf(err)

	type familyCurve struct {
		name   string
		points []tradeoff.Point
	}
	var curves []familyCurve
	for _, fr := range resp.Families {
		if len(fr.Bests) == 0 {
			fmt.Fprintf(os.Stderr, "bfpp-tradeoff: %v: no feasible configuration (skipping)\n", fr.Name)
			continue
		}
		results := make([]engine.Result, len(fr.Bests))
		for i, b := range fr.Bests {
			results[i] = b.Result
		}
		pts, err := tradeoff.Curve(ctx, m, results, bcrit, gpus, *workers)
		fatalIf(err)
		curves = append(curves, familyCurve{fr.Name, pts})
		fmt.Print(tradeoff.Format(fr.Name, pts))
		fmt.Println()
	}

	if *figure1At > 0 {
		fmt.Printf("Figure 1 summary at %d GPUs (%s):\n", *figure1At, m.Name)
		fmt.Printf("%-26s %12s %14s %12s\n", "Method", "time (days)", "cost (GPUd)", "mem min GiB")
		for _, fc := range curves {
			for _, p := range fc.points {
				if p.GPUs == *figure1At {
					fmt.Printf("%-26s %12.2f %14.0f %12.2f\n",
						fc.name, p.TimeDays, p.CostGPUDays, p.MemoryMinGiB)
				}
			}
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-tradeoff:", err)
		os.Exit(1)
	}
}
