// Command bfpp-search runs the Appendix E configuration grid search: for
// each method family and batch size it enumerates the feasible distributed
// configurations, simulates them and prints the winners in the format of
// Tables E.1-E.3 (which also yields the Figure 7 curves).
//
// Families come from the schedule registry: -families selects by key
// ("all" = the paper's four, "every" = all registered, including the
// extension schedules), and -methods selects the families containing the
// named schedules.
//
// The search runs branch-and-bound by default: candidates are priced with
// the analytic step-time lower bound and simulated only when they can
// still beat the incumbent (results are byte-identical either way;
// -noprune simulates everything). Pruning statistics go to stderr.
//
// Examples:
//
//	bfpp-search -model 52B -batches 8,16,32,64,128,256,512      # Table E.1
//	bfpp-search -model 6.6B -cluster ethernet -batches 64,128   # Table E.3
//	bfpp-search -model 6.6B -families every -batches 64         # + extensions
//	bfpp-search -model 6.6B -methods ws-1f1b,v-schedule -batches 64
//	bfpp-search -model gpt3 -cluster 512 -families every -batches 64,128
//	bfpp-search -model 1T -cluster 2048 -batches 256,512        # Appendix E large
package main

import (
	"flag"
	"fmt"
	"os"

	"bfpp/internal/cli"
	"bfpp/internal/parallel"
	"bfpp/internal/search"
)

func main() {
	var (
		modelName   = flag.String("model", "52B", "model: 52B, 6.6B, gpt3, 1T")
		clusterName = flag.String("cluster", "paper", "cluster: paper, ethernet, or a GPU count")
		familyNames = flag.String("families", "all", "comma-separated family keys (bf, df, nl, np, ws, v, ...), \"all\" (paper) or \"every\" (all registered)")
		methodNames = flag.String("methods", "", "comma-separated schedule names; selects the families containing them (overrides -families)")
		batchesStr  = flag.String("batches", "8,16,32,64,128,256,512", "comma-separated global batch sizes")
		workers     = flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		noPrune     = flag.Bool("noprune", false, "disable the analytic branch-and-bound (simulate every candidate)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	m, err := cli.ParseModel(*modelName)
	fatalIf(err)
	c, err := cli.ParseCluster(*clusterName)
	fatalIf(err)
	batches, err := cli.ParseInts(*batchesStr)
	fatalIf(err)

	families, err := cli.ParseFamilies(*familyNames)
	fatalIf(err)
	if *methodNames != "" {
		methods, err := cli.ParseMethods(*methodNames)
		fatalIf(err)
		families, err = cli.FamiliesForMethods(methods)
		fatalIf(err)
	}

	// One shared work queue across all selected families: a short family's
	// tail no longer idles the pool while the next family enumerates, and
	// the branch-and-bound incumbents stay per (family, batch).
	stats := &search.Stats{}
	results, err := search.SweepAll(c, m, families, batches,
		search.Options{NoPrune: *noPrune, Stats: stats})
	if err != nil {
		results = map[search.Family][]search.Best{}
	}
	for _, f := range families {
		if _, ok := results[f]; !ok {
			fmt.Fprintf(os.Stderr, "bfpp-search: %v: no feasible configuration at any batch (skipping)\n", f)
		}
	}
	title := fmt.Sprintf("Optimal configurations: %s on %s (%d GPUs)", m.Name, c.Name, c.NumGPUs())
	fmt.Print(search.Table(title, results))
	fmt.Fprintf(os.Stderr, "bfpp-search: pruning: %v\n", stats)
	for _, key := range stats.FamilyKeys() {
		fmt.Fprintf(os.Stderr, "bfpp-search: pruning[%s]: %v\n", key, stats.Family(key))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-search:", err)
		os.Exit(1)
	}
}
