// Command bfpp-search runs the Appendix E configuration grid search: for
// each method family and batch size it enumerates the feasible distributed
// configurations, simulates them and prints the winners in the format of
// Tables E.1-E.3 (which also yields the Figure 7 curves).
//
// The command is a thin client of the job service (internal/service): it
// submits the same SearchRequest that cmd/bfpp-serve accepts over
// POST /v1/search, so a CLI invocation and a server request provably run
// identical jobs and print byte-identical tables. Ctrl-C cancels the
// search promptly (workers drain between candidate simulations).
//
// Families come from the schedule registry: -families selects by key
// ("all" = the paper's four, "every" = all registered, including the
// extension schedules), and -methods selects the families containing the
// named schedules. Models and clusters resolve through the open
// registries (model.Register, hw.Register).
//
// The search runs branch-and-bound by default: candidates are priced with
// the analytic step-time lower bound and simulated only when they can
// still beat the incumbent (results are byte-identical either way;
// -noprune simulates everything). Pruning statistics go to stderr.
//
// Examples:
//
//	bfpp-search -model 52B -batches 8,16,32,64,128,256,512      # Table E.1
//	bfpp-search -model 6.6B -cluster ethernet -batches 64,128   # Table E.3
//	bfpp-search -model 6.6B -families every -batches 64         # + extensions
//	bfpp-search -model 6.6B -methods ws-1f1b,v-schedule -batches 64
//	bfpp-search -model gpt3 -cluster 512 -families every -batches 64,128
//	bfpp-search -model 1T -cluster 2048 -batches 256,512        # Appendix E large
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"bfpp/internal/cli"
	"bfpp/internal/service"
)

func main() {
	var (
		modelName   = flag.String("model", "52B", "model: any registered name (52B, 6.6B, gpt3, 1T, tiny)")
		clusterName = flag.String("cluster", "paper", "cluster: any registered name (paper, ethernet, or a GPU count)")
		familyNames = flag.String("families", "all", "comma-separated family keys (bf, df, nl, np, ws, v, ...), \"all\" (paper) or \"every\" (all registered)")
		methodNames = flag.String("methods", "", "comma-separated schedule names; selects the families containing them (overrides -families)")
		batchesStr  = flag.String("batches", "8,16,32,64,128,256,512", "comma-separated global batch sizes")
		workers     = flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		noPrune     = flag.Bool("noprune", false, "disable the analytic branch-and-bound (simulate every candidate)")
		costModel   = flag.String("costmodel", "", "cost model: any registered spelling (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	batches, err := cli.ParseInts(*batchesStr)
	fatalIf(err)
	req := service.SearchRequest{
		Model:     *modelName,
		Cluster:   *clusterName,
		Families:  splitList(*familyNames),
		Methods:   splitList(*methodNames),
		Batches:   batches,
		NoPrune:   *noPrune,
		Workers:   *workers,
		CostModel: *costModel,
	}
	// Retryable failures (load shedding, transient faults) back off and try
	// again; results are identical across retries, so the wrapper never
	// changes output — only availability.
	svc := service.New(service.Config{MaxJobs: 1})
	resp, err := service.Do(ctx, service.DefaultRetry(1), func() (service.SearchResponse, error) {
		return svc.Search(ctx, req)
	})
	fatalIf(err)

	for _, fr := range resp.Families {
		if len(fr.Bests) == 0 {
			fmt.Fprintf(os.Stderr, "bfpp-search: %v: no feasible configuration at any batch (skipping)\n", fr.Name)
		}
	}
	fmt.Print(resp.Table)
	st := resp.Stats
	fmt.Fprintf(os.Stderr, "bfpp-search: pruning: enumerated %d, dominated %d, bounded out %d, simulated %d (%.1f%% pruned)\n",
		st.Enumerated, st.Dominated, st.BoundedOut, st.Simulated, 100*pruneRate(st.Enumerated, st.Dominated+st.BoundedOut))
	fmt.Fprintf(os.Stderr, "bfpp-search: cascade: floored out %d, replay priced %d, warm starts %d\n",
		st.FlooredOut, st.ReplayPriced, st.WarmStartHits)
	for _, fp := range st.Families {
		fmt.Fprintf(os.Stderr, "bfpp-search: pruning[%s]: enumerated %d, dominated %d, bounded out %d (floored %d), simulated %d, replay priced %d, warm starts %d (%.1f%% pruned)\n",
			fp.Key, fp.Enumerated, fp.Dominated, fp.BoundedOut, fp.FlooredOut,
			fp.Simulated, fp.ReplayPriced, fp.WarmStartHits,
			100*pruneRate(fp.Enumerated, fp.Dominated+fp.BoundedOut))
	}
}

// splitList turns a comma-separated flag into the request's list form.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func pruneRate(enumerated, pruned int64) float64 {
	if enumerated == 0 {
		return 0
	}
	return float64(pruned) / float64(enumerated)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-search:", err)
		os.Exit(1)
	}
}
