// Command bfpp-search runs the Appendix E configuration grid search: for
// each method family and batch size it enumerates the feasible distributed
// configurations, simulates them and prints the winners in the format of
// Tables E.1-E.3 (which also yields the Figure 7 curves).
//
// Examples:
//
//	bfpp-search -model 52B -batches 8,16,32,64,128,256,512      # Table E.1
//	bfpp-search -model 6.6B -cluster ethernet -batches 64,128   # Table E.3
package main

import (
	"flag"
	"fmt"
	"os"

	"bfpp/internal/cli"
	"bfpp/internal/parallel"
	"bfpp/internal/search"
)

func main() {
	var (
		modelName   = flag.String("model", "52B", "model: 52B, 6.6B, gpt3, 1T")
		clusterName = flag.String("cluster", "paper", "cluster: paper, ethernet, or a GPU count")
		familyName  = flag.String("family", "all", "family: all, bf, df, nl, np")
		batchesStr  = flag.String("batches", "8,16,32,64,128,256,512", "comma-separated global batch sizes")
		workers     = flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	m, err := cli.ParseModel(*modelName)
	fatalIf(err)
	c, err := cli.ParseCluster(*clusterName)
	fatalIf(err)
	batches, err := cli.ParseInts(*batchesStr)
	fatalIf(err)

	families := search.Families()
	if *familyName != "all" {
		f, err := cli.ParseFamily(*familyName)
		fatalIf(err)
		families = []search.Family{f}
	}

	results := map[search.Family][]search.Best{}
	for _, f := range families {
		bests, err := search.Sweep(c, m, f, batches, search.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfpp-search: %v: %v (skipping)\n", f, err)
			continue
		}
		results[f] = bests
	}
	title := fmt.Sprintf("Optimal configurations: %s on %s (%d GPUs)", m.Name, c.Name, c.NumGPUs())
	fmt.Print(search.Table(title, results))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-search:", err)
		os.Exit(1)
	}
}
