// Command bfpp-trace renders the paper's schedule diagrams: the layer
// placements of Figure 3, the pipeline-schedule Gantt charts of Figure 4,
// and the gradient-accumulation schedules of Figure 9, all as ASCII.
// The simulated timelines come from the job service's SimulateRequest
// (Diagram selects the times-to-scale parameter preset), the same request
// cmd/bfpp-serve accepts over POST /v1/simulate.
//
// Usage:
//
//	bfpp-trace -figure 3   # standard vs looping placement
//	bfpp-trace -figure 4   # GPipe / 1F1B / depth-first / breadth-first
//	bfpp-trace -figure 9   # DP0 / DP-FS gradient accumulation, DF vs BF
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bfpp/internal/core"
	"bfpp/internal/engine"
	"bfpp/internal/model"
	"bfpp/internal/service"
	"bfpp/internal/trace"
)

func main() {
	var (
		figure    = flag.Int("figure", 4, "paper figure to render: 3, 4 or 9")
		width     = flag.Int("width", 120, "gantt width in characters")
		costModel = flag.String("costmodel", "", "cost model for the diagram simulations (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()
	costModelName = *costModel
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *figure {
	case 3:
		figure3()
	case 4:
		figure4(ctx, *width)
	case 9:
		figure9(ctx, *width)
	default:
		fmt.Fprintf(os.Stderr, "bfpp-trace: unknown figure %d (3, 4, 9)\n", *figure)
		os.Exit(1)
	}
}

// svc is the in-process job service all diagram simulations share;
// costModelName carries the -costmodel flag into the requests.
var (
	svc           = service.New(service.Config{MaxJobs: 1})
	costModelName string
)

// diagramSim simulates one diagram plan on the tiny model through the
// service, with the times-to-scale parameter preset and the timeline
// captured. Retryable failures back off and retry; the simulation is
// deterministic, so retries cannot change the rendered diagram.
func diagramSim(ctx context.Context, plan core.Plan) (engine.Result, error) {
	resp, err := service.Do(ctx, service.DefaultRetry(1), func() (service.SimulateResponse, error) {
		return svc.Simulate(ctx, service.SimulateRequest{
			Model:           "tiny",
			Cluster:         "paper",
			Plan:            plan,
			CaptureTimeline: true,
			Diagram:         true,
			CostModel:       costModelName,
		})
	})
	return resp.Result, err
}

// figure3 prints the standard and looping placements of a 16-layer model
// on 4 devices.
func figure3() {
	m := model.Tiny()
	std := core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 1}
	looped := core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1, MicroBatch: 1, NumMicro: 8, Loops: 4}
	fmt.Println("Figure 3: layer placements for a 16-layer model on 4 devices")
	fmt.Println()
	fmt.Print(trace.Placement(m, std))
	fmt.Println()
	fmt.Print(trace.Placement(m, looped))
}

// figure4 renders the four pipeline schedules for the 16-layer model with
// 8 micro-batches on 4 devices, times to scale.
func figure4(ctx context.Context, width int) {
	fmt.Println("Figure 4: pipeline schedules, 16 layers, 4 devices, 8 micro-batches")
	fmt.Println()
	cases := []struct {
		name string
		plan core.Plan
	}{
		{"(a) GPipe (non-looped)", core.Plan{Method: core.GPipe, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1, OverlapDP: true, OverlapPP: true}},
		{"(b) 1F1B (non-looped)", core.Plan{Method: core.OneFOneB, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 1}},
		{"(c) Depth-first (looped)", core.Plan{Method: core.DepthFirst, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 4}},
		{"(d) Breadth-first (looped)", core.Plan{Method: core.BreadthFirst, DP: 1, PP: 4, TP: 1,
			MicroBatch: 4, NumMicro: 8, Loops: 4, OverlapDP: true, OverlapPP: true}},
	}
	for _, cse := range cases {
		res, err := diagramSim(ctx, cse.plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("%s — batch time %.4fs, bubble %.1f%%\n", cse.name, res.BatchTime, 100*res.Bubble)
		fmt.Print(trace.Gantt(res.Timeline, width))
		fmt.Println()
	}
	fmt.Print(trace.Legend())
}

// figure9 renders the gradient-accumulation schedules (no pipeline): DP0
// and DP-FS with depth-first and breadth-first ordering.
func figure9(ctx context.Context, width int) {
	fmt.Println("Figure 9: gradient accumulation, 4 stages, 4 micro-batches, DP=4")
	fmt.Println()
	cases := []struct {
		name string
		plan core.Plan
	}{
		{"(a) Depth-first (DP0)", core.Plan{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DP0, OverlapDP: true}},
		{"(b) Depth-first (DP-FS)", core.Plan{Method: core.NoPipelineDF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DPFS, OverlapDP: true}},
		{"(c) Breadth-first (DP0)", core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DP0, OverlapDP: true}},
		{"(d) Breadth-first (DP-FS)", core.Plan{Method: core.NoPipelineBF, DP: 4, PP: 1, TP: 1,
			MicroBatch: 4, NumMicro: 4, Loops: 4, Sharding: core.DPFS, OverlapDP: true}},
	}
	for _, cse := range cases {
		res, err := diagramSim(ctx, cse.plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("%s — batch time %.4fs\n", cse.name, res.BatchTime)
		fmt.Print(trace.Gantt(res.Timeline, width))
		fmt.Println()
	}
	fmt.Print(trace.Legend())
}
