// Command bfpp-serve exposes the bfpp job service over HTTP: the Appendix
// E grid search, single-plan simulation and figure regeneration, with the
// same request structs the command-line tools submit in process — so a
// curl request and a bfpp-search invocation provably run identical jobs
// and print byte-identical tables.
//
// Endpoints:
//
//	POST /v1/search    {"model":"6.6B","cluster":"paper","batches":[32,64]}
//	POST /v1/simulate  {"model":"52B","cluster":"paper","plan":{...}}
//	POST /v1/figures   {"names":["figure4"]}
//	GET  /healthz
//
// /v1/search?stream=1 streams NDJSON progress lines while the sweep runs,
// then the final result. Request deadlines ("timeout_ms", or -timeout)
// map onto the job's context; identical search requests are served from
// the result cache. Models and clusters resolve through the open
// registries, so a registry-added scenario is immediately servable
// without new endpoints.
//
// The server is hardened for unattended runs: panics are contained to the
// crashing request, oversize bodies get 413 (-max-body), saturation sheds
// load with 429 + Retry-After instead of queueing unbounded (-queue), a
// deadline that expires mid-sweep degrades to the incumbents-so-far table
// marked "partial": true, and /healthz reports structured load state.
// -chaos arms a deterministic fault script (internal/fault) for recovery
// drills: e.g. -chaos job:error:1 makes the first job fail transiently,
// which a retrying client must absorb.
//
// Example:
//
//	bfpp-serve -addr localhost:8080 &
//	curl -s -X POST localhost:8080/v1/search \
//	    -d '{"model":"6.6B","cluster":"paper","batches":[32,64,96]}' |
//	  python3 -c 'import json,sys; print(json.load(sys.stdin)["table"])'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfpp/internal/fault"
	"bfpp/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
		jobs       = flag.Int("jobs", 0, "max concurrently executing jobs (0 = 4); further requests queue")
		maxWorkers = flag.Int("max-workers", 0, "per-request worker budget clamp (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 0, "search result cache entries (0 = 64, negative disables)")
		timeout    = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		queue      = flag.Int("queue", 0, "max requests queued for a job slot before shedding 429s (0 = 16, negative = unbounded)")
		maxBody    = flag.Int64("max-body", 0, "request body cap in bytes, 413 beyond (0 = 1 MiB, negative = uncapped)")
		chaos      = flag.String("chaos", "", "deterministic fault script, e.g. \"job:error:1,pool:delay:3:5\" (point:kind:times[:delay-ms])")
	)
	flag.Parse()

	var injector fault.Injector
	if *chaos != "" {
		script, err := fault.ParseScript(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
			os.Exit(1)
		}
		injector = script
		fmt.Printf("bfpp-serve: chaos script armed: %s\n", *chaos)
	}
	svc := service.New(service.Config{
		MaxJobs:              *jobs,
		MaxWorkersPerRequest: *maxWorkers,
		CacheEntries:         *cacheSize,
		DefaultTimeout:       *timeout,
		MaxQueued:            *queue,
		MaxBodyBytes:         *maxBody,
		Injector:             injector,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// scripts (ci.sh's smoke test) learn the ephemeral port.
	fmt.Printf("bfpp-serve: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: service.Handler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish
	// within the drain budget, then force-close.
	fmt.Println("bfpp-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bfpp-serve: drain:", err)
		srv.Close()
		os.Exit(1)
	}
}
