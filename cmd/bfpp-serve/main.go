// Command bfpp-serve exposes the bfpp job service over HTTP: the Appendix
// E grid search, single-plan simulation and figure regeneration, with the
// same request structs the command-line tools submit in process — so a
// curl request and a bfpp-search invocation provably run identical jobs
// and print byte-identical tables.
//
// Endpoints:
//
//	POST /v1/search    {"model":"6.6B","cluster":"paper","batches":[32,64]}
//	POST /v1/simulate  {"model":"52B","cluster":"paper","plan":{...}}
//	POST /v1/figures   {"names":["figure4"]}
//	GET  /healthz
//
// /v1/search?stream=1 and /v1/figures?stream=1 stream NDJSON progress
// lines while the job runs, then the final result. Request deadlines
// ("timeout_ms", or -timeout) map onto the job's context; identical
// search requests are served from the result cache. Models and clusters
// resolve through the open registries, so a registry-added scenario is
// immediately servable without new endpoints. GET /metrics exposes the
// service counters in the Prometheus text format.
//
// The server is hardened for unattended runs: panics are contained to the
// crashing request, oversize bodies get 413 (-max-body), saturation sheds
// load with 429 + Retry-After instead of queueing unbounded (-queue), a
// deadline that expires mid-sweep degrades to the incumbents-so-far table
// marked "partial": true, and /healthz reports structured load state.
// -chaos arms a deterministic fault script (internal/fault) for recovery
// drills: e.g. -chaos job:error:1 makes the first job fail transiently,
// which a retrying client must absorb.
//
// -store DIR makes the service crash-safe: computed sweeps persist to
// DIR/results.log (CRC-framed, torn tails self-truncated at open) and
// every sweep checkpoints its per-(family, batch) winners to
// DIR/sweeps.journal as they resolve — a restarted server serves finished
// sweeps from disk and resumes interrupted ones, re-pricing only the
// unfinished groups, with byte-identical tables either way.
//
// -replicas URL[,URL...] distributes sweeps across peer bfpp-serve
// instances: each (family, batch) group is dispatched to a replica (this
// process prices groups too), transient replica failures retry with
// backoff, dead replicas fail over to the survivors, and the merged table
// is byte-identical to a single-process run.
//
// Example:
//
//	bfpp-serve -addr localhost:8080 -store /var/lib/bfpp &
//	curl -s -X POST localhost:8080/v1/search \
//	    -d '{"model":"6.6B","cluster":"paper","batches":[32,64,96]}' |
//	  python3 -c 'import json,sys; print(json.load(sys.stdin)["table"])'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bfpp/internal/cli"
	"bfpp/internal/dispatch"
	"bfpp/internal/fault"
	"bfpp/internal/service"
	"bfpp/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
		jobs       = flag.Int("jobs", 0, "max concurrently executing jobs (0 = 4); further requests queue")
		maxWorkers = flag.Int("max-workers", 0, "per-request worker budget clamp (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 0, "search result cache entries (0 = 64, negative disables)")
		timeout    = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		queue      = flag.Int("queue", 0, "max requests queued for a job slot before shedding 429s (0 = 16, negative = unbounded)")
		maxBody    = flag.Int64("max-body", 0, "request body cap in bytes, 413 beyond (0 = 1 MiB, negative = uncapped)")
		chaos      = flag.String("chaos", "", "deterministic fault script, e.g. \"job:error:1,pool:delay:3:5\" (point:kind:times[:delay-ms])")
		storeDir   = flag.String("store", "", "durability directory: results persist to DIR/results.log, sweeps checkpoint to DIR/sweeps.journal (empty = in-memory only)")
		replicas   = flag.String("replicas", "", "comma-separated peer bfpp-serve base URLs to shard sweeps across (this process prices groups too)")
		nosync     = flag.Bool("store-nosync", false, "skip the per-record fsync (faster; a host crash can tear the tail, which the CRC framing heals at next open)")
		costModel  = flag.String("costmodel", "", "default cost model for requests without a cost_model field (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()

	if *costModel != "" {
		// Validate the default spelling at startup: a typo (or an unreadable
		// calibrated profile) should fail the launch, not every request.
		if _, err := cli.ParseCostModel(*costModel); err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
			os.Exit(1)
		}
		fmt.Printf("bfpp-serve: default cost model: %s\n", *costModel)
	}

	var injector fault.Injector
	if *chaos != "" {
		script, err := fault.ParseScript(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
			os.Exit(1)
		}
		injector = script
		fmt.Printf("bfpp-serve: chaos script armed: %s\n", *chaos)
	}
	cfg := service.Config{
		MaxJobs:              *jobs,
		MaxWorkersPerRequest: *maxWorkers,
		CacheEntries:         *cacheSize,
		DefaultTimeout:       *timeout,
		MaxQueued:            *queue,
		MaxBodyBytes:         *maxBody,
		Injector:             injector,
		DefaultCostModel:     *costModel,
	}
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
			os.Exit(1)
		}
		sopts := store.Options{Repair: true, NoSync: *nosync, Injector: injector}
		st, err := store.OpenOptions(filepath.Join(*storeDir, "results.log"), sopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve: store:", err)
			os.Exit(1)
		}
		defer st.Close()
		jr, err := store.OpenJournalOptions(filepath.Join(*storeDir, "sweeps.journal"), sopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bfpp-serve: journal:", err)
			os.Exit(1)
		}
		defer jr.Close()
		cfg.Store, cfg.Journal = st, jr
		ss, js := st.Stats(), jr.Stats()
		fmt.Printf("bfpp-serve: store %s: %d results, %d journaled sweeps (%d corruptions healed)\n",
			*storeDir, ss.Records, len(jr.Sweeps()), ss.CorruptionsRecovered+js.CorruptionsRecovered)
	}
	if *replicas != "" {
		// The fleet includes this process: a lone survivor still finishes
		// every sweep after the remotes fail over.
		reps := []dispatch.Replica{&dispatch.Local{ID: "self", Workers: *maxWorkers}}
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, &dispatch.HTTP{BaseURL: strings.TrimRight(u, "/")})
			}
		}
		cfg.Sharder = dispatch.New(dispatch.Options{Injector: injector}, reps...)
		fmt.Printf("bfpp-serve: sharding sweeps across %d replicas (self + %d remote)\n", len(reps), len(reps)-1)
	}
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
		os.Exit(1)
	}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// scripts (ci.sh's smoke test) learn the ephemeral port.
	fmt.Printf("bfpp-serve: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: service.Handler(svc)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bfpp-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish
	// within the drain budget, then force-close.
	fmt.Println("bfpp-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bfpp-serve: drain:", err)
		srv.Close()
		os.Exit(1)
	}
}
