// Command bfpp-sim simulates one training batch of a distributed
// configuration and reports throughput, utilization, memory usage and
// overhead breakdowns. It can also render the execution timeline as an
// ASCII Gantt chart or export a Chrome trace. It is a thin client of the
// job service: the same SimulateRequest drives cmd/bfpp-serve's
// POST /v1/simulate.
//
// Example (the paper's headline configuration, Table E.1 row "Breadth-first
// B=9"):
//
//	bfpp-sim -model 52B -method breadth-first -pp 8 -tp 8 -nmb 9 -loops 8 -gantt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bfpp/internal/cli"
	"bfpp/internal/core"
	"bfpp/internal/schedule"
	"bfpp/internal/service"
	"bfpp/internal/trace"
)

func main() {
	var (
		modelName   = flag.String("model", "52B", "model: any registered name (52B, 6.6B, gpt3, 1T, tiny)")
		clusterName = flag.String("cluster", "paper", "cluster: any registered name (paper, ethernet, or a GPU count)")
		methodName  = flag.String("method", "breadth-first", "schedule: any registered method (gpipe, 1f1b, depth-first, breadth-first, nopipeline-bf, nopipeline-df, hybrid, ws-1f1b, v-schedule)")
		dp          = flag.Int("dp", 1, "data-parallel size")
		pp          = flag.Int("pp", 8, "pipeline-parallel size")
		tp          = flag.Int("tp", 8, "tensor-parallel size")
		smb         = flag.Int("smb", 1, "micro-batch size")
		nmb         = flag.Int("nmb", 8, "sequential micro-batches")
		loops       = flag.Int("loops", 4, "pipeline loops (stages per device)")
		shardName   = flag.String("sharding", "dp0", "sharding: dp0, dpps, dpfs")
		noOverlap   = flag.Bool("no-overlap", false, "disable communication overlap (Megatron-LM style)")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart of the batch")
		width       = flag.Int("width", 120, "gantt width in characters")
		chromeOut   = flag.String("chrome", "", "write a Chrome trace JSON to this path")
		configPath  = flag.String("config", "", "load the plan from a JSON file instead of flags")
		costModel   = flag.String("costmodel", "", "cost model: any registered spelling (paper, calibrated, contended, calibrated:<profile.json>); empty = paper")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var plan core.Plan
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		fatalIf(err)
		plan, err = core.DecodePlan(raw)
		fatalIf(err)
	} else {
		method, err := cli.ParseMethod(*methodName)
		fatalIf(err)
		sharding, err := cli.ParseSharding(*shardName)
		fatalIf(err)
		plan = core.Plan{
			Method: method, DP: *dp, PP: *pp, TP: *tp,
			MicroBatch: *smb, NumMicro: *nmb, Loops: *loops,
			Sharding: sharding,
		}
		// Overlap defaults on wherever the method's implementation
		// supports it — the registered schedule trait, not a method list.
		if !*noOverlap && schedule.TraitsOf(method).Overlap {
			plan.OverlapDP, plan.OverlapPP = true, true
		}
	}

	svc := service.New(service.Config{MaxJobs: 1})
	// Retryable failures (shed slots, transient faults) back off and retry;
	// simulation results are deterministic, so retries cannot change output.
	resp, err := service.Do(ctx, service.DefaultRetry(1), func() (service.SimulateResponse, error) {
		return svc.Simulate(ctx, service.SimulateRequest{
			Model:           *modelName,
			Cluster:         *clusterName,
			Plan:            plan,
			CaptureTimeline: *gantt || *chromeOut != "",
			CostModel:       *costModel,
		})
	})
	fatalIf(err)
	res := resp.Result

	m, err := cli.ParseModel(*modelName)
	fatalIf(err)
	c, err := cli.ParseCluster(*clusterName)
	fatalIf(err)
	fmt.Printf("model:      %v\n", m)
	fmt.Printf("cluster:    %s (%d GPUs)\n", c.Name, c.NumGPUs())
	fmt.Printf("plan:       %v\n", plan)
	fmt.Printf("batch size: %d (beta = %.3g / GPU)\n", plan.BatchSize(), plan.BatchPerGPU())
	fmt.Printf("batch time: %.4f s\n", res.BatchTime)
	fmt.Printf("throughput: %.2f Tflop/s/GPU (%.1f%% utilization)\n",
		res.Throughput/1e12, 100*res.Utilization)
	fmt.Printf("bubble:     %.1f%% (Eq. 9)\n", 100*res.Bubble)
	fmt.Printf("compute:    %.4f s busy on the slowest device\n", res.ComputeTime)
	fmt.Printf("pp comm:    %.4f s   dp comm: %.4f s\n", res.PPCommTime, res.DPCommTime)
	fmt.Printf("memory:     %v\n", res.Memory)

	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Timeline, *width))
		fmt.Print(trace.Legend())
	}
	if *chromeOut != "" {
		raw, err := trace.ChromeTrace(res.Timeline)
		fatalIf(err)
		fatalIf(os.WriteFile(*chromeOut, raw, 0o644))
		fmt.Printf("chrome trace written to %s\n", *chromeOut)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfpp-sim:", err)
		os.Exit(1)
	}
}
